package predict

import (
	"math"
	"testing"
)

// Fixture: 5 codelets, 2 clusters.
// Cluster 0: codelets 0,1,2 (rep 1); cluster 1: codelets 3,4 (rep 4).
func fixtureModel(t *testing.T) *Model {
	t.Helper()
	ref := []float64{1.0, 2.0, 4.0, 10.0, 20.0}
	labels := []int{0, 0, 0, 1, 1}
	reps := []int{1, 4}
	m, err := NewModel(ref, labels, reps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictExact(t *testing.T) {
	m := fixtureModel(t)
	// Representatives run 2x faster on the target.
	repTar := []float64{1.0, 10.0}
	pred, err := m.Predict(repTar)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 2.0, 5.0, 10.0}
	for i := range want {
		if math.Abs(pred[i]-want[i]) > 1e-12 {
			t.Errorf("pred[%d] = %g, want %g", i, pred[i], want[i])
		}
	}
}

func TestRepresentativePredictedExactly(t *testing.T) {
	// "Representatives ... have a 0% prediction error because they are
	// directly measured" (Figure 2).
	m := fixtureModel(t)
	repTar := []float64{3.7, 42.0}
	pred, _ := m.Predict(repTar)
	if pred[1] != 3.7 || pred[4] != 42.0 {
		t.Errorf("representatives not exactly reproduced: %v", pred)
	}
}

func TestMatrixForm(t *testing.T) {
	m := fixtureModel(t)
	M := m.Matrix()
	if len(M) != 5 || len(M[0]) != 2 {
		t.Fatalf("M is %dx%d", len(M), len(M[0]))
	}
	// M[i][k] = t_ref_i / t_ref_rep_k on the codelet's own cluster, 0
	// elsewhere.
	want := [][]float64{{0.5, 0}, {1, 0}, {2, 0}, {0, 0.5}, {0, 1}}
	for i := range want {
		for k := range want[i] {
			if math.Abs(M[i][k]-want[i][k]) > 1e-12 {
				t.Errorf("M[%d][%d] = %g, want %g", i, k, M[i][k], want[i][k])
			}
		}
	}
	// Matrix-vector product must agree with Predict.
	repTar := []float64{2.0, 30.0}
	pred, _ := m.Predict(repTar)
	for i := range M {
		mv := M[i][0]*repTar[0] + M[i][1]*repTar[1]
		if math.Abs(mv-pred[i]) > 1e-12 {
			t.Errorf("matrix product disagrees with Predict at %d: %g vs %g", i, mv, pred[i])
		}
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel([]float64{1, 2}, []int{0}, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewModel([]float64{1, 2}, []int{0, 1}, []int{0, 0}); err == nil {
		t.Error("representative outside its cluster accepted")
	}
	if _, err := NewModel([]float64{0, 2}, []int{0, 0}, []int{0}); err == nil {
		t.Error("zero-time representative accepted")
	}
	if _, err := NewModel([]float64{1, 2}, []int{0, 5}, []int{0}); err == nil {
		t.Error("label out of range accepted")
	}
	m := fixtureModel(t)
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("short representative vector accepted")
	}
}

func TestErrorsAndSummary(t *testing.T) {
	errs := Errors([]float64{110, 95, 100}, []float64{100, 100, 100})
	want := []float64{0.10, 0.05, 0}
	for i := range want {
		if math.Abs(errs[i]-want[i]) > 1e-12 {
			t.Errorf("errs[%d] = %g", i, errs[i])
		}
	}
	s := Summarize(errs)
	if math.Abs(s.Median-0.05) > 1e-12 || math.Abs(s.Max-0.10) > 1e-12 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Average-0.05) > 1e-12 {
		t.Errorf("average = %g", s.Average)
	}
}

func TestAppTimes(t *testing.T) {
	app := &App{
		Name:              "bt",
		Codelets:          []int{0, 2},
		Invocations:       []int{10, 5},
		UncoveredFraction: 0.08,
	}
	per := []float64{1.0, 99.0, 2.0}
	covered := 10*1.0 + 5*2.0
	want := covered / 0.92
	if got := app.AppTimes(per); math.Abs(got-want) > 1e-12 {
		t.Errorf("AppTimes = %g, want %g", got, want)
	}
}

func TestAppUncoveredInheritsSpeedup(t *testing.T) {
	app := &App{Codelets: []int{0}, Invocations: []int{1}, UncoveredFraction: 0.5}
	ref := app.AppTimes([]float64{8})
	tar := app.AppTimes([]float64{4})
	// Covered part sped up 2x -> whole app must speed up 2x.
	if math.Abs(ref/tar-2) > 1e-12 {
		t.Errorf("app speedup = %g, want 2", ref/tar)
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	ref := []float64{10, 10}
	tar := []float64{5, 20} // speedups 2 and 0.5
	if got := GeoMeanSpeedup(ref, tar); math.Abs(got-1) > 1e-12 {
		t.Errorf("geomean = %g, want 1", got)
	}
}

func TestReductionBreakdown(t *testing.T) {
	b := Reduction(4400, 440, 100)
	if math.Abs(b.Total-44) > 1e-12 {
		t.Errorf("total = %g", b.Total)
	}
	if math.Abs(b.InvocationFactor-10) > 1e-12 {
		t.Errorf("invocation factor = %g", b.InvocationFactor)
	}
	if math.Abs(b.ClusteringFactor-4.4) > 1e-12 {
		t.Errorf("clustering factor = %g", b.ClusteringFactor)
	}
	// Total factorizes exactly.
	if math.Abs(b.Total-b.InvocationFactor*b.ClusteringFactor) > 1e-9 {
		t.Error("breakdown does not factorize")
	}
	// Degenerate zeros must not divide by zero.
	z := Reduction(100, 0, 0)
	if !math.IsInf(z.Total, 0) && z.Total != 0 {
		t.Errorf("zero handling: %+v", z)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Error("speedup wrong")
	}
	if Speedup(10, 0) != 0 {
		t.Error("zero target not guarded")
	}
}

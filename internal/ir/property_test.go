package ir

import (
	"testing"
	"testing/quick"

	"fgbs/internal/rng"
)

// randomAffine draws an affine form over the given variables.
func randomAffine(r *rng.RNG, vars []string) Affine {
	a := AC(r.Int63n(21) - 10)
	for _, v := range vars {
		if r.Bool(0.6) {
			a = a.Plus(AT(v, r.Int63n(9)-4))
		}
	}
	return a
}

func randomEnv(r *rng.RNG, vars []string) map[string]int64 {
	env := make(map[string]int64, len(vars))
	for _, v := range vars {
		env[v] = r.Int63n(201) - 100
	}
	return env
}

// Property: Eval is a homomorphism for Plus, Minus and ScaleK.
func TestAffineEvalHomomorphism(t *testing.T) {
	vars := []string{"i", "j", "n"}
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := randomAffine(r, vars)
		b := randomAffine(r, vars)
		env := randomEnv(r, vars)
		k := r.Int63n(11) - 5
		if a.Plus(b).Eval(env) != a.Eval(env)+b.Eval(env) {
			return false
		}
		if a.Minus(b).Eval(env) != a.Eval(env)-b.Eval(env) {
			return false
		}
		if a.ScaleK(k).Eval(env) != k*a.Eval(env) {
			return false
		}
		if a.PlusK(k).Eval(env) != a.Eval(env)+k {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Plus is commutative and Equal is a congruence for it.
func TestAffineAlgebraLaws(t *testing.T) {
	vars := []string{"x", "y"}
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := randomAffine(r, vars)
		b := randomAffine(r, vars)
		c := randomAffine(r, vars)
		if !a.Plus(b).Equal(b.Plus(a)) {
			return false
		}
		if !a.Plus(b).Plus(c).Equal(a.Plus(b.Plus(c))) {
			return false
		}
		if !a.Minus(a).Equal(AC(0)) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// affineToExpr rebuilds an affine form as an expression tree.
func affineToExpr(a Affine) Expr {
	e := CI(a.K)
	for _, t := range a.Terms {
		e = Add(e, Mul(CI(t.Coeff), V(t.Var)))
	}
	return e
}

// Property: ExprAffine inverts affineToExpr — analyzing the expression
// recovers a form that evaluates identically.
func TestExprAffineRoundTrip(t *testing.T) {
	vars := []string{"i", "j", "k"}
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := randomAffine(r, vars)
		got, ok := ExprAffine(affineToExpr(a))
		if !ok {
			return false
		}
		env := randomEnv(r, vars)
		return got.Eval(env) == a.Eval(env)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RefStride is the discrete derivative of the linearized
// index: lin(i+1) - lin(i) == stride elems for affine refs.
func TestStrideIsDerivative(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 64)
	p.AddArray("m", F64, AV("n"), AV("n"))
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		// Index [a*i+b][c*i+d] with small coefficients.
		a, b := r.Int63n(3), r.Int63n(5)
		c, d := r.Int63n(3), r.Int63n(5)
		ref := p.Ref("m",
			Add(Mul(CI(a), V("i")), CI(b)),
			Add(Mul(CI(c), V("i")), CI(d)))
		lin, ok := p.LinearIndex(ref)
		if !ok {
			return false
		}
		st := p.RefStride(ref, "i")
		at := func(i int64) int64 { return lin.Eval(map[string]int64{"i": i}) }
		deriv := at(5) - at(4)
		if deriv == 0 {
			return st.Kind == StrideConst
		}
		return st.Kind == StrideAffine && st.Elems == deriv
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CountOps is additive over Plus.
func TestOpCountAdditive(t *testing.T) {
	a := OpCount{FAdd: 1, FMul: 2, FDiv: 3, FSqrt: 1, FSpecial: 2, IntOps: 4, Loads: 5, Stores: 6, F32Ops: 1}
	b := OpCount{FAdd: 10, FMul: 20, FDiv: 30, FSqrt: 10, FSpecial: 20, IntOps: 40, Loads: 50, Stores: 60, F32Ops: 10}
	s := a.Plus(b)
	if s.FAdd != 11 || s.FMul != 22 || s.FDiv != 33 || s.FSqrt != 11 ||
		s.FSpecial != 22 || s.IntOps != 44 || s.Loads != 55 || s.Stores != 66 || s.F32Ops != 11 {
		t.Errorf("Plus wrong: %+v", s)
	}
	if s.FPOps() != s.FAdd+s.FMul+s.FDiv+s.FSqrt+s.FSpecial {
		t.Error("FPOps inconsistent")
	}
}

package ir

import (
	"fmt"
	"sort"
)

// VecHint lets a kernel definition constrain the lowering pass's
// vectorization decision for one statement, modeling compiler behavior
// the dependence test alone cannot predict (e.g. icc leaving the FFT
// butterfly of realft_4 scalar despite it being legal to vectorize).
type VecHint uint8

const (
	// VecAuto lets the dependence- and stride-based heuristic decide.
	VecAuto VecHint = iota
	// VecNever forces scalar code for the statement.
	VecNever
)

// Stmt is a statement in a loop body: either an assignment or a nested
// loop.
type Stmt interface{ isStmt() }

// Assign stores RHS into LHS. The IR has no other side effects.
type Assign struct {
	LHS  *Ref
	RHS  Expr
	Hint VecHint
}

func (*Assign) isStmt() {}

// Loop iterates Var over [Lower, Upper) with step +1. Non-unit strides
// are expressed inside index expressions (e.g. A[2*i]), matching how
// the stride analysis of Table 3 reports them.
type Loop struct {
	Var          string
	Lower, Upper Affine
	Body         []Stmt
}

func (*Loop) isStmt() {}

// IntInitKind selects how an integer array's contents are initialized
// by the simulator's dataset builder. Only integer arrays need values:
// they steer indirect addressing (gathers, scatters), which is the one
// way data can influence the access stream. Floating-point values
// never affect timing and are not materialized.
type IntInitKind uint8

const (
	// IntInitZero fills with zeros (default).
	IntInitZero IntInitKind = iota
	// IntInitUniform fills with deterministic pseudo-random values in
	// [0, Bound) — worst-case gather locality (CG column indices, IS
	// keys).
	IntInitUniform
	// IntInitMod fills element i with i % Bound — a banded, cyclic
	// pattern with reuse.
	IntInitMod
)

// IntInit describes integer array initialization.
type IntInit struct {
	Kind IntInitKind
	// Bound is evaluated against the program parameters.
	Bound Affine
}

// Array declares a named array with element type DT and dimension
// sizes Dims (affine in program parameters). A 0-dimensional array is
// a scalar. The last dimension is contiguous (row-major layout).
type Array struct {
	Name string
	DT   DType
	Dims []Affine
	// Init is consulted for I64 arrays only (see IntInitKind).
	Init IntInit
}

// Elems returns the total element count under the parameter env.
func (a *Array) Elems(env map[string]int64) int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d.Eval(env)
	}
	return n
}

// Bytes returns the array footprint in bytes under env.
func (a *Array) Bytes(env map[string]int64) int64 {
	return a.Elems(env) * a.DT.Size()
}

// Codelet is an outlined outermost loop nest, the unit the whole
// method operates on (detection, profiling, clustering, extraction,
// prediction).
type Codelet struct {
	// Name uniquely identifies the codelet within its suite, e.g.
	// "toeplz_1" or "cg_matvec".
	Name string
	// App is the application the codelet was outlined from ("bt",
	// "cg", ..., or the NR program name).
	App string
	// SourceRef mimics the paper's file:line provenance, e.g.
	// "BT/rhs.f:266-311".
	SourceRef string
	// Pattern is the human description used in Table 3, e.g.
	// "DP: 2 simultaneous reductions".
	Pattern string
	// Loop is the outermost loop of the nest.
	Loop *Loop
	// Invocations is how many times the application calls this codelet
	// over its lifetime; the source of the "multiple invocations"
	// redundancy the method removes.
	Invocations int

	// DatasetVariation models codelets invoked with different datasets
	// across the application lifetime (the first ill-behaved category
	// of §3.4). A value v > 0 scales the trip counts of invocation k by
	// 1 + v*w(k) for a deterministic alternating weight w; the memory
	// dump captured at invocation 0 then misrepresents the average
	// invocation.
	DatasetVariation float64
	// WarmInApp marks codelets whose arrays are the application's
	// shared working state: between two invocations the neighboring
	// codelets keep that data cache-resident, so in-application
	// profiling does not start from a cold cache. Codelets with
	// private data (false, the default) find their data evicted at
	// every invocation.
	WarmInApp bool
	// VaryParam names the size parameter scaled by DatasetVariation.
	// Invocation k runs with VaryParam scaled by 1 - DatasetVariation *
	// (k mod 3), shrinking only, so array bounds stay valid.
	VaryParam string
	// ContextSensitive models codelets compiled differently inside and
	// outside the application (the second ill-behaved category): when
	// true, lowering outside the application context falls back to
	// scalar code because the profitability heuristic loses the
	// surrounding-code information.
	ContextSensitive bool
}

// Program is an application: parameters, arrays and the codelets
// outlined from it.
type Program struct {
	Name string
	// Params binds the integer size parameters referenced by array
	// dimensions and loop bounds (e.g. "n" = 200_000).
	Params map[string]int64
	// UncoveredFraction is the share of the application's execution
	// time spent outside any detected codelet. The paper reports the
	// NAS codelets cover 92% of execution time; the application-level
	// prediction (Figure 5) assumes the uncovered part follows the
	// covered part's speedup.
	UncoveredFraction float64

	arrays   []*Array
	arrayIdx map[string]*Array
	Codelets []*Codelet
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:     name,
		Params:   make(map[string]int64),
		arrayIdx: make(map[string]*Array),
	}
}

// SetParam binds parameter name to v.
func (p *Program) SetParam(name string, v int64) { p.Params[name] = v }

// AddArray declares an array; it panics on duplicate names (kernel
// definitions are static program data, so this is a programming error).
func (p *Program) AddArray(name string, dt DType, dims ...Affine) *Array {
	if _, dup := p.arrayIdx[name]; dup {
		panic(fmt.Sprintf("ir: duplicate array %q in program %q", name, p.Name))
	}
	a := &Array{Name: name, DT: dt, Dims: dims}
	p.arrays = append(p.arrays, a)
	p.arrayIdx[name] = a
	return a
}

// AddScalar declares a 0-dimensional array (a scalar memory cell).
func (p *Program) AddScalar(name string, dt DType) *Array {
	return p.AddArray(name, dt)
}

// Array looks up a declared array, or nil.
func (p *Program) Array(name string) *Array { return p.arrayIdx[name] }

// Arrays returns the declared arrays in declaration order.
func (p *Program) Arrays() []*Array { return p.arrays }

// Ref builds a reference to an element of array name; it panics if the
// array is undeclared or the index arity mismatches the declaration.
func (p *Program) Ref(name string, idx ...Expr) *Ref {
	a := p.arrayIdx[name]
	if a == nil {
		panic(fmt.Sprintf("ir: reference to undeclared array %q", name))
	}
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("ir: array %q has %d dims, indexed with %d", name, len(a.Dims), len(idx)))
	}
	for _, ix := range idx {
		if ix.DType() != I64 {
			panic(fmt.Sprintf("ir: non-integer index into %q", name))
		}
	}
	return &Ref{Array: name, Index: idx, dt: a.DT}
}

// LoadE builds a load expression from array name.
func (p *Program) LoadE(name string, idx ...Expr) Expr {
	return &Load{Ref: p.Ref(name, idx...)}
}

// AddCodelet attaches a codelet and validates it against the program.
func (p *Program) AddCodelet(c *Codelet) error {
	if c.Loop == nil {
		return fmt.Errorf("ir: codelet %q has no loop", c.Name)
	}
	if c.Invocations <= 0 {
		return fmt.Errorf("ir: codelet %q has non-positive invocation count", c.Name)
	}
	c.App = p.Name
	if err := p.validateLoop(c.Loop, map[string]bool{}); err != nil {
		return fmt.Errorf("ir: codelet %q: %w", c.Name, err)
	}
	p.Codelets = append(p.Codelets, c)
	return nil
}

// MustAddCodelet is AddCodelet panicking on error, for static suite
// definitions.
func (p *Program) MustAddCodelet(c *Codelet) {
	if err := p.AddCodelet(c); err != nil {
		panic(err)
	}
}

// validateLoop checks variable binding, array references and types.
func (p *Program) validateLoop(l *Loop, bound map[string]bool) error {
	if l.Var == "" {
		return fmt.Errorf("loop with empty variable")
	}
	if bound[l.Var] {
		return fmt.Errorf("loop variable %q shadows an enclosing loop", l.Var)
	}
	for _, b := range [2]Affine{l.Lower, l.Upper} {
		for _, v := range b.Vars() {
			if !bound[v] && !p.hasParam(v) {
				return fmt.Errorf("loop bound references unbound variable %q", v)
			}
		}
	}
	bound[l.Var] = true
	defer delete(bound, l.Var)
	for _, s := range l.Body {
		switch st := s.(type) {
		case *Loop:
			if err := p.validateLoop(st, bound); err != nil {
				return err
			}
		case *Assign:
			if err := p.validateRef(st.LHS, bound); err != nil {
				return err
			}
			if err := p.validateExpr(st.RHS, bound); err != nil {
				return err
			}
			if st.LHS.DType() != st.RHS.DType() {
				return fmt.Errorf("assignment to %q: type mismatch %s = %s",
					st.LHS.Array, st.LHS.DType(), st.RHS.DType())
			}
		default:
			return fmt.Errorf("unknown statement type %T", s)
		}
	}
	return nil
}

func (p *Program) hasParam(name string) bool {
	_, ok := p.Params[name]
	return ok
}

func (p *Program) validateRef(r *Ref, bound map[string]bool) error {
	a := p.arrayIdx[r.Array]
	if a == nil {
		return fmt.Errorf("reference to undeclared array %q", r.Array)
	}
	if len(r.Index) != len(a.Dims) {
		return fmt.Errorf("array %q: %d dims indexed with %d", r.Array, len(a.Dims), len(r.Index))
	}
	for _, ix := range r.Index {
		if err := p.validateExpr(ix, bound); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateExpr(e Expr, bound map[string]bool) error {
	var err error
	WalkExpr(e, func(n Expr) {
		if err != nil {
			return
		}
		switch x := n.(type) {
		case *Var:
			if !bound[x.Name] && !p.hasParam(x.Name) {
				err = fmt.Errorf("unbound variable %q", x.Name)
			}
		case *Load:
			if p.arrayIdx[x.Ref.Array] == nil {
				err = fmt.Errorf("load from undeclared array %q", x.Ref.Array)
			} else if len(x.Ref.Index) != len(p.arrayIdx[x.Ref.Array].Dims) {
				err = fmt.Errorf("array %q: %d dims indexed with %d",
					x.Ref.Array, len(p.arrayIdx[x.Ref.Array].Dims), len(x.Ref.Index))
			}
		}
	})
	return err
}

// Validate checks every codelet of the program.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for _, c := range p.Codelets {
		if seen[c.Name] {
			return fmt.Errorf("ir: duplicate codelet name %q", c.Name)
		}
		seen[c.Name] = true
		if err := p.validateLoop(c.Loop, map[string]bool{}); err != nil {
			return fmt.Errorf("ir: codelet %q: %w", c.Name, err)
		}
	}
	return nil
}

// InnermostLoops returns the innermost loops of the codelet's nest in
// source order, along with the loop variables enclosing each (outer to
// inner, excluding the innermost's own variable).
func (c *Codelet) InnermostLoops() []*LoopContext {
	var out []*LoopContext
	var walk func(l *Loop, outer []string)
	walk = func(l *Loop, outer []string) {
		hasNested := false
		for _, s := range l.Body {
			if nl, ok := s.(*Loop); ok {
				hasNested = true
				walk(nl, append(append([]string(nil), outer...), l.Var))
			}
		}
		if !hasNested {
			out = append(out, &LoopContext{Loop: l, Outer: outer})
		}
	}
	walk(c.Loop, nil)
	return out
}

// LoopContext is an innermost loop plus the loop variables of its
// enclosing loops.
type LoopContext struct {
	Loop  *Loop
	Outer []string // enclosing loop variables, outermost first
}

// AllVars returns the enclosing variables plus the innermost variable.
func (lc *LoopContext) AllVars() []string {
	return append(append([]string(nil), lc.Outer...), lc.Loop.Var)
}

// SortedParamNames returns the program's parameter names sorted, for
// deterministic iteration.
func (p *Program) SortedParamNames() []string {
	names := make([]string, 0, len(p.Params))
	for n := range p.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package compile

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

// buildSimple builds a parameterizable element-wise kernel with the
// given numbers of multiplies and adds per point.
func buildSimple(muls, adds int) (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("t")
	p.SetParam("n", 4096)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	rhs := p.LoadE("b", ir.V("i"))
	for m := 0; m < muls; m++ {
		rhs = ir.Mul(rhs, ir.CF(1.0001))
	}
	for a := 0; a < adds; a++ {
		rhs = ir.Add(rhs, ir.CF(0.5))
	}
	c := &ir.Codelet{
		Name: "kern", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: rhs},
		}},
	}
	p.MustAddCodelet(c)
	return p, c
}

// Property: vectorization never increases the modeled cycles per
// iteration, on any machine, for any op mix.
func TestVectorizationNeverSlower(t *testing.T) {
	for muls := 0; muls <= 4; muls++ {
		for adds := 0; adds <= 4; adds++ {
			for _, m := range arch.All() {
				p, c := buildSimple(muls, adds)
				vec := Lower(p, c, m, true).Loops[0].CyclesPerIter
				c.Loop.Body[0].(*ir.Assign).Hint = ir.VecNever
				scalar := Lower(p, c, m, true).Loops[0].CyclesPerIter
				if vec > scalar+1e-9 {
					t.Errorf("%s muls=%d adds=%d: vector %.3f > scalar %.3f cycles/iter",
						m.Name, muls, adds, vec, scalar)
				}
			}
		}
	}
}

// Property: adding work never reduces the per-iteration cost.
func TestCostMonotoneInWork(t *testing.T) {
	for _, m := range arch.All() {
		prev := 0.0
		for ops := 0; ops <= 6; ops++ {
			p, c := buildSimple(ops, ops)
			cyc := Lower(p, c, m, true).Loops[0].CyclesPerIter
			if cyc < prev-1e-9 {
				t.Errorf("%s: cost decreased when adding work (%.3f -> %.3f)", m.Name, prev, cyc)
			}
			prev = cyc
		}
	}
}

// Property: the reference machine is never slower per iteration than
// Atom for the same code (Atom is strictly weaker in every resource).
func TestAtomNeverFasterPerCycle(t *testing.T) {
	for muls := 0; muls <= 3; muls++ {
		p, c := buildSimple(muls, 2)
		neh := Lower(p, c, arch.Nehalem(), true).Loops[0].CyclesPerIter
		atom := Lower(p, c, arch.Atom(), true).Loops[0].CyclesPerIter
		if atom < neh {
			t.Errorf("muls=%d: Atom %.3f cycles/iter beats Nehalem %.3f", muls, atom, neh)
		}
	}
}

// Property: lowering the same codelet twice yields identical results
// (purity).
func TestLowerPure(t *testing.T) {
	p, c := buildSimple(2, 2)
	for _, m := range arch.All() {
		a := Lower(p, c, m, true)
		b := Lower(p, c, m, true)
		if a.Loops[0].CyclesPerIter != b.Loops[0].CyclesPerIter ||
			a.Loops[0].InstrPerIter != b.Loops[0].InstrPerIter {
			t.Errorf("%s: lowering not deterministic", m.Name)
		}
	}
}

// Property: context-sensitivity only matters outside the application.
func TestContextSensitiveOnlyAffectsStandalone(t *testing.T) {
	p, c := buildSimple(2, 2)
	base := Lower(p, c, arch.Nehalem(), true).Loops[0].CyclesPerIter
	c.ContextSensitive = true
	inApp := Lower(p, c, arch.Nehalem(), true).Loops[0].CyclesPerIter
	if inApp != base {
		t.Error("ContextSensitive changed in-app lowering")
	}
}

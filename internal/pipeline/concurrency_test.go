package pipeline

import (
	"context"
	"sync"
	"testing"
)

// TestConcurrentSubsetEvaluate exercises the Profile immutability
// contract under the race detector: many goroutines running the full
// Step C-E chain against one shared profile must neither race nor
// diverge from the sequential result.
func TestConcurrentSubsetEvaluate(t *testing.T) {
	prof := tinyProfile(t)
	want, err := prof.Subset(tinyMask, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantEv, err := prof.Evaluate(want, 0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				sub, err := prof.Subset(tinyMask, 3)
				if err != nil {
					errs[w] = err
					return
				}
				for i, l := range sub.Selection.Labels {
					if l != want.Selection.Labels[i] {
						t.Errorf("worker %d: label %d = %d, want %d", w, i, l, want.Selection.Labels[i])
						return
					}
				}
				for tt := range prof.Targets {
					ev, err := prof.Evaluate(sub, tt)
					if err != nil {
						errs[w] = err
						return
					}
					if tt == 0 && ev.Summary.Median != wantEv.Summary.Median {
						t.Errorf("worker %d: median %v, want %v", w, ev.Summary.Median, wantEv.Summary.Median)
						return
					}
				}
				if _, err := prof.Elbow(tinyMask); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestNewProfileContextCanceled verifies that a canceled context
// aborts profiling with the context's error instead of a partial
// profile.
func TestNewProfileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prof, err := NewProfileContext(ctx, tinySuite(), Options{Seed: 1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if prof != nil {
		t.Fatal("partial profile returned after cancellation")
	}
}

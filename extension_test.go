package fgbs

// Extension experiments beyond the paper's evaluation, following its
// §5/§6 directions: a third benchmark suite (PolyBench-like), a joint
// multi-suite subsetting run exploiting inter-suite redundancy, and a
// wide-vector accelerator-like target probing how far the trained
// feature set generalizes. EXPERIMENTS.md records the outcomes under
// "Extensions".

import (
	"sync"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/features"
	"fgbs/internal/pipeline"
)

var (
	polyOnce sync.Once
	polyProf *Profile
	polyErr  error

	jointOnce sync.Once
	jointProf *Profile
	jointErr  error
)

func polyProfile(tb testing.TB) *Profile {
	tb.Helper()
	polyOnce.Do(func() {
		polyProf, polyErr = NewProfile(PolySuite(), Options{Seed: 1})
	})
	if polyErr != nil {
		tb.Fatal(polyErr)
	}
	return polyProf
}

func jointProfile(tb testing.TB) *Profile {
	tb.Helper()
	jointOnce.Do(func() {
		jointProf, jointErr = NewProfile(append(NASSuite(), PolySuite()...), Options{Seed: 1})
	})
	if jointErr != nil {
		tb.Fatal(jointErr)
	}
	return jointProf
}

// TestExtensionPolyGeneralization: the NR-style feature subset,
// chosen without ever seeing the poly kernels, subsets them
// accurately — the §6 claim that the method extends to other
// benchmark contexts.
func TestExtensionPolyGeneralization(t *testing.T) {
	skipIfRace(t)
	prof := polyProfile(t)
	if prof.N() != 18 {
		t.Fatalf("poly profile has %d codelets", prof.N())
	}
	sub := defaultSubset(t, prof)
	if sub.K() < 6 || sub.K() >= prof.N() {
		t.Errorf("poly elbow K = %d: no redundancy found", sub.K())
	}
	for _, ev := range evaluateAll(t, prof, sub) {
		if ev.Summary.Median > 0.08 {
			t.Errorf("%s: poly median error %.1f%%", ev.Target.Name, ev.Summary.Median*100)
		}
		if ev.Reduction.Total < 3 {
			t.Errorf("%s: poly reduction only x%.1f", ev.Target.Name, ev.Reduction.Total)
		}
	}
}

// TestExtensionJointSuiteRedundancy: clustering NAS and poly together
// needs fewer representatives than subsetting them separately — the
// paper's inter-application redundancy argument, lifted to whole
// suites.
func TestExtensionJointSuiteRedundancy(t *testing.T) {
	skipIfRace(t)
	nas := nasProfile(t)
	poly := polyProfile(t)
	joint := jointProfile(t)
	mask := DefaultFeatures()

	kNAS, err := nas.Elbow(mask)
	if err != nil {
		t.Fatal(err)
	}
	kPoly, err := poly.Elbow(mask)
	if err != nil {
		t.Fatal(err)
	}
	kJoint, err := joint.Elbow(mask)
	if err != nil {
		t.Fatal(err)
	}
	if kJoint >= kNAS+kPoly {
		t.Errorf("joint elbow K = %d, not below separate %d + %d: no inter-suite redundancy",
			kJoint, kNAS, kPoly)
	}

	sub, err := joint.Subset(mask, kJoint)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evaluateAll(t, joint, sub) {
		if ev.Summary.Median > 0.08 {
			t.Errorf("joint subsetting on %s: median error %.1f%%", ev.Target.Name, ev.Summary.Median*100)
		}
	}
	// At least one cluster must mix codelets from both suites (shared
	// representative across suites — the thing SimPoint cannot do).
	mixed := false
	for c := 0; c < sub.K(); c++ {
		hasNAS, hasPoly := false, false
		for i, l := range sub.Selection.Labels {
			if l != c {
				continue
			}
			if len(joint.Codelets[i].Name) >= 5 && joint.Codelets[i].Name[:5] == "poly_" {
				hasPoly = true
			} else {
				hasNAS = true
			}
		}
		if hasNAS && hasPoly {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Error("no cluster mixes NAS and poly codelets; redundancy claim hollow")
	}
}

// TestExtensionWideVectorTarget: the paper's §5 wonders whether the
// reference-trained features survive "a completely different
// architecture such as a GPU". On the wide-vector accelerator model
// the subsetting still predicts accurately, and the architecture-
// independent characterization does at least as well — supporting the
// paper's proposed generalization.
func TestExtensionWideVectorTarget(t *testing.T) {
	skipIfRace(t)
	targets := append(arch.Targets(), arch.WideVec())
	prof, err := pipeline.NewProfile(NASSuite(), pipeline.Options{Seed: 1, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	wv, err := prof.TargetIndex("WideVec")
	if err != nil {
		t.Fatal(err)
	}

	evalWith := func(mask FeatureMask) float64 {
		sub, err := prof.Subset(mask, 0)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := prof.Evaluate(sub, wv)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Summary.Median
	}
	def := evalWith(DefaultFeatures())
	indep := evalWith(features.ArchIndependentMask())
	if def > 0.10 {
		t.Errorf("WideVec median error %.1f%% with default features", def*100)
	}
	if indep > 0.10 {
		t.Errorf("WideVec median error %.1f%% with arch-independent features", indep*100)
	}

	// The machine must actually be "completely different": per-codelet
	// speedups spread over a wide range (vector code flies, serial
	// code crawls).
	sub, err := prof.Subset(DefaultFeatures(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := prof.Evaluate(sub, wv)
	if err != nil {
		t.Fatal(err)
	}
	minS, maxS := 1e9, 0.0
	for i := range prof.Codelets {
		s := prof.RefInApp[i] / ev.Actual[i]
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS/minS < 8 {
		t.Errorf("WideVec speedup spread %.1fx (%.2f..%.2f): target not different enough",
			maxS/minS, minS, maxS)
	}
}

// TestExtensionAutotune: the §6 auto-tuning context — compiler
// configurations as targets. Representatives measured under
// vectorizing and non-vectorizing builds must predict the per-codelet
// vectorize-or-not decision for the rest of the suite.
func TestExtensionAutotune(t *testing.T) {
	skipIfRace(t)
	targets := []*Machine{arch.Nehalem(), arch.NehalemNoVec()}
	prof, err := pipeline.NewProfile(NASSuite(), pipeline.Options{Seed: 1, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	sub := defaultSubset(t, prof)
	evVec := targetEval(t, prof, sub, "Nehalem")
	evNo := targetEval(t, prof, sub, "Nehalem -no-vec")

	decision := func(gain float64) bool { return gain > 1.05 }
	agree, matter := 0, 0
	for i := range prof.Codelets {
		pred := decision(evNo.Predicted[i] / evVec.Predicted[i])
		real := decision(evNo.Actual[i] / evVec.Actual[i])
		if pred == real {
			agree++
		}
		if evNo.Actual[i]/evVec.Actual[i] > 1.05 {
			matter++
		}
	}
	if frac := float64(agree) / float64(prof.N()); frac < 0.85 {
		t.Errorf("tuning decisions correct for only %.0f%% of codelets", frac*100)
	}
	if matter < 10 {
		t.Errorf("only %d codelets benefit from vectorization; the experiment needs contrast", matter)
	}
	// Scalar recurrences must not be predicted to benefit.
	for i, c := range prof.Codelets {
		if c.Name == "sp_x_solve" {
			if decision(evNo.Predicted[i] / evVec.Predicted[i]) {
				t.Error("recurrence sp_x_solve predicted to benefit from vectorization")
			}
		}
	}
}

// TestExtensionReferenceChoice: profiling on Sandy Bridge instead of
// Nehalem (with Nehalem becoming a target) must leave the method
// intact — the reference is a methodological choice, not a magic
// constant.
func TestExtensionReferenceChoice(t *testing.T) {
	skipIfRace(t)
	targets := []*Machine{arch.Nehalem(), arch.Atom(), arch.Core2()}
	prof, err := pipeline.NewProfile(NASSuite(), pipeline.Options{
		Seed: 1, Reference: arch.SandyBridge(), Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := defaultSubset(t, prof)
	if sub.K() < 10 || sub.K() > 30 {
		t.Errorf("elbow K = %d under the alternate reference", sub.K())
	}
	for _, ev := range evaluateAll(t, prof, sub) {
		if ev.Summary.Median > 0.08 {
			t.Errorf("%s: median error %.1f%% under Sandy Bridge reference",
				ev.Target.Name, ev.Summary.Median*100)
		}
	}
	// Nehalem, now a target, is predicted (slower than SB overall).
	ev := targetEval(t, prof, sub, "Nehalem")
	if ev.GeoMeanRealSpeedup > 0.7 {
		t.Errorf("Nehalem geomean speedup vs Sandy Bridge = %.2f, expected well below 1",
			ev.GeoMeanRealSpeedup)
	}
}

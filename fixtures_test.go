package fgbs

import (
	"sync"
	"testing"

	"fgbs/internal/pipeline"
)

// The NR and NAS profiles are the expensive fixtures (a few seconds
// each of parallel simulation); build each once per test binary and
// share across every experiment test and benchmark.
var (
	nrOnce sync.Once
	nrProf *Profile
	nrErr  error

	nasOnce sync.Once
	nasProf *Profile
	nasErr  error
)

// skipIfRace skips single-threaded reproduction experiments under the
// race detector: they run the simulator for tens of minutes at -race
// speed without exercising any concurrency. Concurrency coverage lives
// in internal/pipeline and internal/server, which run fully under -race.
func skipIfRace(tb testing.TB) {
	tb.Helper()
	if raceDetectorEnabled {
		tb.Skip("heavy single-threaded reproduction test; skipped under -race")
	}
}

func nrProfile(tb testing.TB) *Profile {
	tb.Helper()
	nrOnce.Do(func() {
		nrProf, nrErr = NewProfile(NRSuite(), Options{Seed: 1})
	})
	if nrErr != nil {
		tb.Fatal(nrErr)
	}
	return nrProf
}

func nasProfile(tb testing.TB) *Profile {
	tb.Helper()
	nasOnce.Do(func() {
		nasProf, nasErr = NewProfile(NASSuite(), Options{Seed: 1})
	})
	if nasErr != nil {
		tb.Fatal(nasErr)
	}
	return nasProf
}

// defaultSubset returns the elbow-selected subset for a profile.
func defaultSubset(tb testing.TB, prof *Profile) *Subset {
	tb.Helper()
	sub, err := prof.Subset(DefaultFeatures(), 0)
	if err != nil {
		tb.Fatal(err)
	}
	return sub
}

// evaluateAll runs Step E on every target.
func evaluateAll(tb testing.TB, prof *Profile, sub *Subset) []*Eval {
	tb.Helper()
	var evals []*Eval
	for t := range prof.Targets {
		ev, err := prof.Evaluate(sub, t)
		if err != nil {
			tb.Fatal(err)
		}
		evals = append(evals, ev)
	}
	return evals
}

// targetEval evaluates one named target.
func targetEval(tb testing.TB, prof *Profile, sub *Subset, name string) *pipeline.Eval {
	tb.Helper()
	ti, err := prof.TargetIndex(name)
	if err != nil {
		tb.Fatal(err)
	}
	ev, err := prof.Evaluate(sub, ti)
	if err != nil {
		tb.Fatal(err)
	}
	return ev
}

package server

import (
	"sync"
	"testing"
	"time"
)

// TestBreakerHalfOpenConcurrentProbes races many goroutines against an
// open circuit whose cooldown has just elapsed: exactly one may be
// admitted as the half-open probe, the rest must be refused. Run under
// -race, this also pins that allow's probe handoff is properly locked.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b := newBreakerSet(3, time.Minute, clock.now)
	const key = "suite:raced"
	for i := 0; i < 3; i++ {
		b.fail(key)
	}
	if !b.isOpen(key) {
		t.Fatal("circuit not open after threshold failures")
	}
	clock.advance(time.Minute)

	const racers = 16
	var (
		start    = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
	)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.allow(key) {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open slot admitted %d probes, want exactly 1", admitted)
	}

	// The probe's outcome settles the slot. A failure re-opens the
	// cooldown: nobody gets in until it elapses again, and then again
	// exactly one.
	b.fail(key)
	if b.allow(key) {
		t.Error("probe admitted before the restarted cooldown elapsed")
	}
	clock.advance(time.Minute)
	if !b.allow(key) {
		t.Error("no probe admitted after the restarted cooldown")
	}
	if b.allow(key) {
		t.Error("second concurrent probe admitted while the first is in flight")
	}
	// A successful probe closes the circuit for everyone.
	b.succeed(key)
	for i := 0; i < 3; i++ {
		if !b.allow(key) {
			t.Fatal("closed circuit refused a caller")
		}
	}
}

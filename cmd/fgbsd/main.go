// Command fgbsd is the long-running system-selection service: it
// profiles each benchmark suite at most once (lazily, with concurrent
// first requests coalesced into a single profiling run) and then
// answers subsetting, evaluation and system-selection queries over
// HTTP from the shared in-memory profiles, caching repeated results.
//
// Usage:
//
//	fgbsd [flags]
//
// Flags:
//
//	-addr host:port  listen address (default :8093)
//	-suites list     comma-separated suites to serve (default all:
//	                 nas, nr, poly, joint, plus the synthetic syn-*
//	                 suites internal/corpus registers)
//	-preload list    comma-separated suites to profile at startup
//	                 instead of on first request
//	-profiledir dir  persist built profiles as <dir>/<suite>-<key>.json
//	                 and reload them on restart (bare <suite>.json files
//	                 from earlier releases are still read)
//	-cachesize N     LRU result-cache capacity in entries (default 256)
//	-stagecache N    in-memory stage artifact store capacity in entries
//	                 (default 512); every pipeline stage — profiles,
//	                 per-K subsets, per-target evaluations — resolves
//	                 through it, so queries and jobs share work
//	-stagedir dir    where the stage store persists disk artifacts
//	                 (default: the -profiledir value)
//	-peers list      comma-separated base URLs of peer fgbsd daemons;
//	                 adds a peer tier to the stage store that fetches
//	                 artifacts from their /v1/artifacts/{key} endpoints
//	                 before recomputing
//	-stagetiers list comma-separated stage tier order (memory, disk,
//	                 peer); default: disk when a directory is set, then
//	                 peer when -peers is set
//	-seed N          profiling seed (default 1)
//	-workers N       concurrent measurements per profiling run
//	                 (default GOMAXPROCS)
//	-jobworkers N    concurrently running experiment jobs submitted
//	                 via POST /v1/jobs (default GOMAXPROCS)
//	-jobretention d  how long finished jobs stay pollable (default 15m)
//	-faultprofile p  JSON fault-injection profile applied to every
//	                 measurement, with the robust retry/outlier-rejection
//	                 protocol mounted on top (chaos testing; see the
//	                 README's "Chaos testing" section). Validated before
//	                 the daemon starts; injector and retry counters show
//	                 up in /metricz.
//
// Long experiments run asynchronously through the /v1/jobs API (see
// internal/server); completed job results are persisted under
// <profiledir>/jobs when -profiledir is set.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// stops, in-flight requests get a drain window, and any profiling
// build or experiment job still running is canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/measure"
	"fgbs/internal/server"
	"fgbs/internal/stage"
	"fgbs/internal/suites"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgbsd:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fgbsd:", err)
		os.Exit(1)
	}
}

// daemonConfig is the parsed and validated flag set.
type daemonConfig struct {
	addr         string
	serve        []string
	preload      []string
	dir          string
	cacheN       int
	stageCacheN  int
	stageDir     string
	peers        []string
	stageTiers   []string
	seed         uint64
	workers      int
	jobWorkers   int
	jobRetention time.Duration
	// faults is the validated -faultprofile content; nil when the flag
	// is unset (the daemon then measures fault-free, byte-identical to
	// earlier releases).
	faults *fault.Profile
}

// parseFlags validates everything up front: a daemon that dies on its
// first request because of a typo in -suites is strictly worse than
// one that refuses to start.
func parseFlags(args []string) (daemonConfig, error) {
	cfg := daemonConfig{}
	fs := flag.NewFlagSet("fgbsd", flag.ContinueOnError)
	var suiteList, preloadList string
	fs.StringVar(&cfg.addr, "addr", ":8093", "listen address")
	fs.StringVar(&suiteList, "suites", "", "comma-separated suites to serve (default all)")
	fs.StringVar(&preloadList, "preload", "", "comma-separated suites to profile at startup")
	fs.StringVar(&cfg.dir, "profiledir", "", "directory for persisted profiles")
	fs.IntVar(&cfg.cacheN, "cachesize", 256, "LRU result-cache capacity")
	fs.IntVar(&cfg.stageCacheN, "stagecache", 512, "in-memory stage artifact store capacity")
	fs.StringVar(&cfg.stageDir, "stagedir", "", "directory for persisted stage artifacts (default: -profiledir)")
	var peerList, tierList string
	fs.StringVar(&peerList, "peers", "", "comma-separated base URLs of peer fgbsd daemons")
	fs.StringVar(&tierList, "stagetiers", "", "comma-separated stage tier order (memory, disk, peer)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "profiling seed")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent measurements per profiling run (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.jobWorkers, "jobworkers", 0, "concurrently running experiment jobs (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.jobRetention, "jobretention", 0, "how long finished jobs stay pollable (0 = 15m)")
	var faultPath string
	fs.StringVar(&faultPath, "faultprofile", "", "JSON fault-injection profile (chaos testing)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if cfg.cacheN <= 0 {
		return cfg, fmt.Errorf("-cachesize must be positive, got %d", cfg.cacheN)
	}
	if cfg.stageCacheN <= 0 {
		return cfg, fmt.Errorf("-stagecache must be positive, got %d", cfg.stageCacheN)
	}
	if cfg.jobWorkers < 0 {
		return cfg, fmt.Errorf("-jobworkers must be >= 0, got %d", cfg.jobWorkers)
	}
	if cfg.jobRetention < 0 {
		return cfg, fmt.Errorf("-jobretention must be >= 0, got %v", cfg.jobRetention)
	}
	var err error
	if cfg.serve, err = splitSuites(suiteList, suites.Names()); err != nil {
		return cfg, fmt.Errorf("-suites: %w", err)
	}
	if cfg.preload, err = splitSuites(preloadList, cfg.serve); err != nil {
		return cfg, fmt.Errorf("-preload: %w", err)
	}
	if preloadList == "" {
		cfg.preload = nil
	}
	if faultPath != "" {
		if cfg.faults, err = fault.Load(faultPath); err != nil {
			return cfg, fmt.Errorf("-faultprofile: %w", err)
		}
	}
	if cfg.peers, err = splitPeers(peerList); err != nil {
		return cfg, fmt.Errorf("-peers: %w", err)
	}
	if tierList != "" {
		for _, name := range strings.Split(tierList, ",") {
			cfg.stageTiers = append(cfg.stageTiers, strings.TrimSpace(name))
		}
	}
	// Dry-run the tier chain the server will build so a typo in
	// -stagetiers (or a peer tier without -peers) refuses to start here
	// instead of panicking inside server.New.
	stageDir := cfg.stageDir
	if stageDir == "" {
		stageDir = cfg.dir
	}
	names := cfg.stageTiers
	if len(names) == 0 {
		names = stage.DefaultTierNames(stageDir, cfg.peers)
	}
	if _, err := stage.NewTierChain(names, stage.TierConfig{Dir: stageDir, Peers: cfg.peers}); err != nil {
		return cfg, fmt.Errorf("-stagetiers: %w", err)
	}
	return cfg, nil
}

// splitPeers parses the -peers list, requiring absolute http(s) base
// URLs — a bare host would silently never match anything.
func splitPeers(list string) ([]string, error) {
	if list == "" {
		return nil, nil
	}
	var out []string
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		u, err := url.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("peer %q: %w", p, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("peer %q: want an absolute http(s) base URL", p)
		}
		out = append(out, p)
	}
	return out, nil
}

// splitSuites parses a comma-separated suite list, restricted to the
// given valid names; an empty list means all of them.
func splitSuites(list string, valid []string) ([]string, error) {
	if list == "" {
		return valid, nil
	}
	var out []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		ok := false
		for _, v := range valid {
			ok = ok || v == name
		}
		if !ok {
			return nil, fmt.Errorf("unknown suite %q (valid: %s)", name, strings.Join(valid, ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

// run serves until ctx is canceled, then drains and exits.
func run(ctx context.Context, cfg daemonConfig) error {
	scfg := server.Config{
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		ProfileDir:      cfg.dir,
		ResultCacheSize: cfg.cacheN,
		StageCacheSize:  cfg.stageCacheN,
		StageDir:        cfg.stageDir,
		Peers:           cfg.peers,
		StageTiers:      cfg.stageTiers,
		SuiteNames:      cfg.serve,
		JobWorkers:      cfg.jobWorkers,
		JobRetention:    cfg.jobRetention,
	}
	if cfg.faults != nil {
		inj := fault.NewInjector(cfg.faults, nil)
		rob := measure.New(inj, measure.Config{})
		scfg.Measurer = rob
		scfg.MeasurerKey = cfg.faults.Fingerprint()
		scfg.MeasureStats = func() measure.Stats { return rob.Stats() }
		scfg.FaultStats = func() fault.Stats { return inj.Stats() }
	}
	s := server.New(scfg)
	defer s.Close()
	if cfg.faults != nil {
		fmt.Printf("fgbsd: fault injection active (%d rules, seed %d)\n", len(cfg.faults.Rules), cfg.faults.Seed)
	}

	if len(cfg.preload) > 0 {
		fmt.Printf("fgbsd: preloading %s\n", strings.Join(cfg.preload, ", "))
		if err := s.Warm(cfg.preload); err != nil {
			return err
		}
	}

	// Listen before announcing: with -addr :0 the kernel picks the
	// port, and harnesses (the crash-recovery e2e) learn it from the
	// serving line, which must therefore carry the bound address rather
	// than the flag value.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	// The server goroutine is torn down by httpSrv.Shutdown below, not
	// by observing ctx directly.
	//fgbs:allow goroutineleak joined via httpSrv.Shutdown on ctx cancellation
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("fgbsd: serving %s on %s\n", strings.Join(cfg.serve, ", "), ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("fgbsd: shutting down")
	//fgbs:allow ctxpropagation the graceful drain must outlive the already-canceled signal ctx
	drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(drain)
}

package main

import (
	"fmt"
	"os"

	"fgbs/internal/corpus"
	"fgbs/internal/ir"
)

// cmdCorpus is the synthetic-suite surface: with no -family and no
// synthetic -suite it lists the generator catalog (families, axes,
// registered suites); with -family it materializes n standalone
// codelets of that family under -seed; with a synthetic -suite it
// materializes the registered suite. Output is the canonical corpus
// dump — byte-identical for a given (family/suite, seed, n) at every
// worker count — written to stdout or -out.
func cmdCorpus(cfg config) error {
	switch {
	case cfg.family != "":
		progs, err := corpus.GenerateFamily(cfg.family, cfg.seed, cfg.n, cfg.jobs)
		if err != nil {
			return err
		}
		return writeCorpus(cfg, progs)
	case corpus.IsSuite(cfg.suite):
		progs, err := corpus.BuildSuiteWorkers(cfg.suite, cfg.jobs)
		if err != nil {
			return err
		}
		return writeCorpus(cfg, progs)
	default:
		fmt.Println("Families (generate with: fgbs corpus -family <name> -n <count> [-seed N]):")
		for _, name := range corpus.FamilyNames() {
			f, err := corpus.FamilyByName(name)
			if err != nil {
				return err
			}
			fmt.Printf("\n  %-10s %s\n", f.Name, f.Doc)
			for _, ax := range f.Axes {
				fmt.Printf("    %-12s %s  (%s)\n", ax.Name, ax.Doc, ax)
			}
		}
		fmt.Println("\nRegistered suites (materialize with: fgbs corpus -suite <name>):")
		for _, s := range corpus.Suites() {
			fmt.Printf("  %-12s %4d codelets, seed %-10d %s\n", s.Name, s.Size(), s.Seed, s.Doc)
		}
		return nil
	}
}

func writeCorpus(cfg config, progs []*ir.Program) error {
	dump := corpus.Dump(progs)
	if cfg.benchOut != "" {
		if err := os.WriteFile(cfg.benchOut, []byte(dump), 0o644); err != nil {
			return err
		}
		var n int
		for _, p := range progs {
			n += len(p.Codelets)
		}
		fmt.Printf("wrote %d codelets (%d programs) to %s\n", n, len(progs), cfg.benchOut)
		return nil
	}
	_, err := fmt.Print(dump)
	return err
}

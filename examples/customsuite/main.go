// Custom suite: apply benchmark subsetting to your own workloads.
//
// This example defines a small image-processing application in the
// loop-nest IR through the public API — a blur stencil, a gamma-style
// per-pixel division, a histogram scatter and two reductions — then
// runs the full pipeline: profile once on the reference machine,
// cluster, pick representatives, and predict every kernel's time on
// the three targets from the representatives alone.
//
// Run with:
//
//	go run ./examples/customsuite
package main

import (
	"fmt"
	"log"

	"fgbs"
)

// buildImagePipeline defines one application with five codelets.
func buildImagePipeline() *fgbs.Program {
	p := fgbs.NewProgram("imgproc")
	p.SetParam("w", 512)
	p.SetParam("h", 512)
	p.UncoveredFraction = 0.05

	p.AddArray("src", fgbs.F64, fgbs.AV("h"), fgbs.AV("w"))
	p.AddArray("dst", fgbs.F64, fgbs.AV("h"), fgbs.AV("w"))
	p.AddArray("lut", fgbs.F64, fgbs.AV("h"), fgbs.AV("w"))
	hist := p.AddArray("hist", fgbs.I64, fgbs.AC(256))
	_ = hist
	keys := p.AddArray("keys", fgbs.I64, fgbs.AV("h"), fgbs.AV("w"))
	keys.Init = fgbs.IntInit{Kind: fgbs.IntInitUniform, Bound: fgbs.AC(256)}
	p.AddScalar("acc", fgbs.F64)

	i, j := fgbs.V("i"), fgbs.V("j")
	at := func(arr string, di, dj int64) fgbs.Expr {
		return p.LoadE(arr, fgbs.Add(i, fgbs.CI(di)), fgbs.Add(j, fgbs.CI(dj)))
	}

	// Horizontal blur: vectorizable unit-stride stencil.
	p.MustAddCodelet(&fgbs.Codelet{
		Name: "img_blur", Pattern: "DP: 3-tap blur", Invocations: 60, WarmInApp: true,
		Loop: &fgbs.Loop{Var: "i", Lower: fgbs.AC(0), Upper: fgbs.AV("h"), Body: []fgbs.Stmt{
			&fgbs.Loop{Var: "j", Lower: fgbs.AC(1), Upper: fgbs.AV("w").PlusK(-1), Body: []fgbs.Stmt{
				&fgbs.Assign{
					LHS: p.Ref("dst", i, j),
					RHS: fgbs.Add(
						fgbs.Mul(fgbs.CF(0.5), at("src", 0, 0)),
						fgbs.Mul(fgbs.CF(0.25), fgbs.Add(at("src", 0, -1), at("src", 0, 1)))),
				},
			}},
		}},
	})

	// Gamma-like correction: division-bound.
	p.MustAddCodelet(&fgbs.Codelet{
		Name: "img_gamma", Pattern: "DP: per-pixel divide", Invocations: 60, WarmInApp: true,
		Loop: &fgbs.Loop{Var: "i", Lower: fgbs.AC(0), Upper: fgbs.AV("h"), Body: []fgbs.Stmt{
			&fgbs.Loop{Var: "j", Lower: fgbs.AC(0), Upper: fgbs.AV("w"), Body: []fgbs.Stmt{
				&fgbs.Assign{
					LHS: p.Ref("dst", i, j),
					RHS: fgbs.DivE(at("src", 0, 0), fgbs.Add(at("lut", 0, 0), fgbs.CF(0.5))),
				},
			}},
		}},
	})

	// Histogram: integer scatter through data-dependent indices.
	p.MustAddCodelet(&fgbs.Codelet{
		Name: "img_hist", Pattern: "INT: histogram scatter", Invocations: 60, WarmInApp: true,
		Loop: &fgbs.Loop{Var: "i", Lower: fgbs.AC(0), Upper: fgbs.AV("h"), Body: []fgbs.Stmt{
			&fgbs.Loop{Var: "j", Lower: fgbs.AC(0), Upper: fgbs.AV("w"), Body: []fgbs.Stmt{
				&fgbs.Assign{
					LHS: p.Ref("hist", p.LoadE("keys", i, j)),
					RHS: fgbs.Add(p.LoadE("hist", p.LoadE("keys", i, j)), fgbs.CI(1)),
				},
			}},
		}},
	})

	// Mean luminance: reduction.
	p.MustAddCodelet(&fgbs.Codelet{
		Name: "img_mean", Pattern: "DP: mean reduction", Invocations: 120, WarmInApp: true,
		Loop: &fgbs.Loop{Var: "i", Lower: fgbs.AC(0), Upper: fgbs.AV("h"), Body: []fgbs.Stmt{
			&fgbs.Loop{Var: "j", Lower: fgbs.AC(0), Upper: fgbs.AV("w"), Body: []fgbs.Stmt{
				&fgbs.Assign{LHS: p.Ref("acc"), RHS: fgbs.Add(p.LoadE("acc"), at("src", 0, 0))},
			}},
		}},
	})

	// RMS contrast: reduction with a square and a sqrt-flavored tail.
	p.MustAddCodelet(&fgbs.Codelet{
		Name: "img_rms", Pattern: "DP: sum of squares", Invocations: 120, WarmInApp: true,
		Loop: &fgbs.Loop{Var: "i", Lower: fgbs.AC(0), Upper: fgbs.AV("h"), Body: []fgbs.Stmt{
			&fgbs.Loop{Var: "j", Lower: fgbs.AC(0), Upper: fgbs.AV("w"), Body: []fgbs.Stmt{
				&fgbs.Assign{LHS: p.Ref("acc"),
					RHS: fgbs.Add(p.LoadE("acc"), fgbs.Mul(at("src", 0, 0), at("src", 0, 0)))},
			}},
		}},
	})
	return p
}

func main() {
	app := buildImagePipeline()
	prof, err := fgbs.NewProfile([]*fgbs.Program{app}, fgbs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sub, err := prof.Subset(fgbs.DefaultFeatures(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d codelets reduced to %d representatives:\n", prof.N(), sub.K())
	reps := map[int]bool{}
	for _, r := range sub.Selection.Reps {
		reps[r] = true
	}
	for i, c := range prof.Codelets {
		marker := " "
		if reps[i] {
			marker = "*"
		}
		fmt.Printf("  %s %-10s cluster %d\n", marker, c.Name, sub.Selection.Labels[i]+1)
	}
	fmt.Println()
	for t := range prof.Targets {
		ev, err := prof.Evaluate(sub, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s app time predicted %7.2fms real %7.2fms (err %.1f%%), reduction x%.1f\n",
			ev.Target.Name, ev.Apps[0].PredSec*1e3, ev.Apps[0].ActualSec*1e3,
			ev.Apps[0].ErrorFrac*100, ev.Reduction.Total)
	}
}

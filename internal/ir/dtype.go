// Package ir defines the loop-nest intermediate representation in which
// fgbs expresses codelets.
//
// The paper extracts codelets from C and Fortran sources with the CAPS
// Codelet Finder: a codelet is an outermost loop nest without side
// effects that can be outlined into a standalone microbenchmark. This
// repository has no compiler front end or proprietary extractor, so the
// benchmark suites (Numerical Recipes, NAS-like) are written directly in
// this IR. The IR keeps exactly the information the method needs:
//
//   - the loop structure (nests, affine bounds, trip counts),
//   - the statement-level computation (FP/integer operation mix,
//     precision, divisions, special functions),
//   - the memory access pattern (affine strides, indirection),
//   - loop-carried dependences (what can and cannot vectorize).
//
// Downstream packages consume the IR: internal/compile lowers innermost
// loops to per-iteration instruction bundles, internal/sim executes
// codelets against a modeled memory hierarchy, and internal/maqao
// computes static loop metrics.
package ir

import "fmt"

// DType is the element type of an array or the result type of an
// expression. The IR distinguishes integer data, single-precision and
// double-precision floating point because the paper's feature set does
// (e.g. the two "Dense Matrix x vector product" NR codelets land in
// different clusters purely due to precision).
type DType uint8

const (
	// I64 is a 64-bit signed integer (loop variables, index arrays,
	// integer workloads such as NAS IS).
	I64 DType = iota
	// F32 is single-precision floating point.
	F32
	// F64 is double-precision floating point.
	F64
)

// Size returns the size of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case I64:
		return 8
	case F32:
		return 4
	case F64:
		return 8
	default:
		panic(fmt.Sprintf("ir: unknown dtype %d", d))
	}
}

// IsFloat reports whether d is a floating-point type.
func (d DType) IsFloat() bool { return d == F32 || d == F64 }

// String returns a short human-readable name.
func (d DType) String() string {
	switch d {
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// Command fgbsvet runs the repository's invariant analyzers over the
// module and reports findings in the standard file:line:col form.
//
// Usage:
//
//	fgbsvet [flags] [packages]
//
// Packages are go-tool-style patterns ("./...", "./internal/pipeline",
// "fgbs/internal/ga/..."); the default is ./... from the current
// module. Exit status is 0 when the tree is clean, 1 when any finding
// survives, and 2 on usage or load errors.
//
// Flags:
//
//	-checks list   comma-separated checks to run (default: all)
//	-list          print the available checks and exit
//
// Findings are suppressed at the site with an inline
// //fgbs:allow <check> <reason> comment; see DESIGN.md's "Static
// analysis" section for each check's contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fgbs/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("fgbsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "print the available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	opts, err := parseChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	pkgs, err := mod.Select(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, opts)
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fgbsvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// parseChecks validates the -checks flag up front, with errors that
// list the valid names (the cmd/fgbs convention).
func parseChecks(list string) (analysis.Options, error) {
	var opts analysis.Options
	if list == "" {
		return opts, nil
	}
	valid := make(map[string]bool)
	for _, name := range analysis.CheckNames() {
		valid[name] = true
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			return opts, fmt.Errorf("unknown check %q (valid: %s)",
				name, strings.Join(analysis.CheckNames(), ", "))
		}
		opts.Checks = append(opts.Checks, name)
	}
	if len(opts.Checks) == 0 {
		return opts, fmt.Errorf("-checks lists no checks (valid: %s)",
			strings.Join(analysis.CheckNames(), ", "))
	}
	return opts, nil
}

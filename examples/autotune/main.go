// Auto-tuning: the paper's §6 suggests the extracted microbenchmarks
// "could be extended to other contexts such as compiler regression
// test-suites or auto-tuning". This example treats a compiler
// configuration as a target: the reference machine compiled with and
// without vectorization. Only the cluster representatives are
// benchmarked under each configuration; every other codelet's
// vectorize-or-not decision is predicted from its representative —
// and then checked against the (simulated) ground truth.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"fgbs"
	"fgbs/internal/arch"
	"fgbs/internal/pipeline"
)

func main() {
	// Targets: the usual machines are irrelevant here; the two
	// "systems" under selection are compiler configurations on the
	// reference silicon.
	targets := []*fgbs.Machine{arch.Nehalem(), arch.NehalemNoVec()}
	prof, err := pipeline.NewProfile(fgbs.NASSuite(), pipeline.Options{Seed: 1, Targets: targets})
	if err != nil {
		log.Fatal(err)
	}
	sub, err := prof.Subset(fgbs.DefaultFeatures(), 0)
	if err != nil {
		log.Fatal(err)
	}
	vec, err := prof.TargetIndex("Nehalem")
	if err != nil {
		log.Fatal(err)
	}
	novec, err := prof.TargetIndex("Nehalem -no-vec")
	if err != nil {
		log.Fatal(err)
	}
	evVec, err := prof.Evaluate(sub, vec)
	if err != nil {
		log.Fatal(err)
	}
	evNo, err := prof.Evaluate(sub, novec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmarked %d representatives under 2 compiler configurations\n", sub.K())
	fmt.Println("\ncodelet            predicted       actual          agree  vec gain")
	agree, interesting := 0, 0
	for i, c := range prof.Codelets {
		predGain := evNo.Predicted[i] / evVec.Predicted[i]
		realGain := evNo.Actual[i] / evVec.Actual[i]
		// Decision rule: vectorize when it wins by more than 5%.
		pred, real := decision(predGain), decision(realGain)
		if pred == real {
			agree++
		}
		if realGain > 1.05 || realGain < 0.95 {
			interesting++
		}
		if i < 12 {
			fmt.Printf("%-18s %-15s %-15s %-6v %.2fx\n", c.Name, pred, real, pred == real, realGain)
		}
	}
	fmt.Printf("... (%d codelets total)\n", prof.N())
	fmt.Printf("\ntuning decisions correct: %d/%d (%d codelets where the choice matters)\n",
		agree, prof.N(), interesting)
}

func decision(gain float64) string {
	if gain > 1.05 {
		return "vectorize"
	}
	return "keep scalar"
}

// Package measure implements the paper's robust measurement protocol
// (§3.4) on top of any — possibly faulty — fault.Measurer:
//
//   - every measurement runs N invocations and summarizes with the
//     median, after rejecting outlier invocations by median absolute
//     deviation (the "≥10 invocations, take the median" rule, hardened
//     against the wild samples fault injection produces);
//   - errors are classified transient or permanent: transient failures
//     (flaky targets, machine-down episodes, hangs cut short by the
//     per-attempt deadline) are retried with exponential backoff and
//     deterministic jitter, bounded by MaxAttempts;
//   - each attempt carries its own context deadline so a hanging
//     target surfaces as a retryable timeout instead of wedging the
//     profiling pool.
//
// A measurement that still fails after the retry budget returns a
// *measure.Error carrying the full attempt history; the pipeline
// escalates it into the ill-behaved/dissolution machinery of
// represent.Select instead of aborting the profile.
package measure

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/ir"
	"fgbs/internal/rng"
	"fgbs/internal/sim"
	"fgbs/internal/stats"
)

// Default protocol knobs.
const (
	// DefaultInvocations is the paper's re-measurement floor: at least
	// 10 invocations, summarized by the median.
	DefaultInvocations = 10
	// DefaultMADK rejects invocations more than 3.5 consistent MADs
	// from the median (the conventional modified-z-score cut).
	DefaultMADK = 3.5
	// DefaultMaxAttempts bounds retries per measurement.
	DefaultMaxAttempts = 4
	// DefaultBaseBackoff is the first retry delay; each retry doubles
	// it up to DefaultMaxBackoff, plus deterministic jitter.
	DefaultBaseBackoff = 2 * time.Millisecond
	// DefaultMaxBackoff caps the exponential growth.
	DefaultMaxBackoff = 50 * time.Millisecond
	// DefaultAttemptTimeout is the per-attempt context deadline: the
	// bound that turns a hang into a retryable timeout.
	DefaultAttemptTimeout = 2 * time.Second
)

// Config tunes the robust protocol. The zero value uses the defaults
// above.
type Config struct {
	// Invocations is the per-measurement invocation count; the
	// measurement keeps the caller's larger request if any. 0 means
	// DefaultInvocations; negative means "leave the caller's value
	// alone" (used by the transparency regression tests).
	Invocations int
	// MADK is the outlier-rejection threshold in consistent MADs.
	// 0 means DefaultMADK; negative disables rejection.
	MADK float64
	// MaxAttempts bounds tries per measurement (0 = default).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the retry delays (0 = defaults).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout is the per-attempt deadline (0 = default;
	// negative disables the per-attempt deadline).
	AttemptTimeout time.Duration
	// JitterSeed drives the deterministic backoff jitter.
	JitterSeed uint64
	// Sleep waits between retries; tests inject an instant sleeper.
	// nil uses a real timer honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c *Config) fill() {
	if c.Invocations == 0 {
		c.Invocations = DefaultInvocations
	}
	//fgbs:allow floatcompare exact-zero sentinel: 0 means "use the default", never a computed value
	if c.MADK == 0 {
		c.MADK = DefaultMADK
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.Sleep == nil {
		c.Sleep = realSleep
	}
}

// realSleep waits for d or ctx, whichever ends first. Retry backoff is
// the one place the measurement layer touches the wall clock; the
// durations never feed a result, only pacing.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d) //fgbs:allow determinism backoff pacing only; no experiment result reads the clock
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Error is a measurement that exhausted its retry budget (or failed
// permanently). It unwraps to the final attempt's error, so transient
// classification and sentinel matching keep working.
type Error struct {
	Codelet  string
	Machine  string
	Mode     sim.Mode
	Attempts int
	Err      error
}

// Error summarizes the failed measurement.
func (e *Error) Error() string {
	return fmt.Sprintf("measure: %s on %s (%s) failed after %d attempt(s): %v",
		e.Codelet, e.Machine, e.Mode, e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *Error) Unwrap() error { return e.Err }

// Stats are the protocol's cumulative counters for /metricz and chaos
// assertions. All fields are updated atomically.
type Stats struct {
	Attempts   int64 `json:"attempts"`
	Retries    int64 `json:"retries"`
	Timeouts   int64 `json:"timeouts"`
	Transients int64 `json:"transients"`
	Permanents int64 `json:"permanents"`
	Exhausted  int64 `json:"exhausted"`
	Rejected   int64 `json:"rejectedInvocations"`
}

// Robust wraps a base Measurer with the retry/median/MAD protocol.
// Safe for concurrent use.
type Robust struct {
	base fault.Measurer
	cfg  Config

	attempts   atomic.Int64
	retries    atomic.Int64
	timeouts   atomic.Int64
	transients atomic.Int64
	permanents atomic.Int64
	exhausted  atomic.Int64
	rejected   atomic.Int64
}

// New builds the robust protocol over base (nil = the raw simulator).
func New(base fault.Measurer, cfg Config) *Robust {
	if base == nil {
		base = fault.Sim{}
	}
	cfg.fill()
	return &Robust{base: base, cfg: cfg}
}

// Stats snapshots the counters.
func (r *Robust) Stats() Stats {
	return Stats{
		Attempts:   r.attempts.Load(),
		Retries:    r.retries.Load(),
		Timeouts:   r.timeouts.Load(),
		Transients: r.transients.Load(),
		Permanents: r.permanents.Load(),
		Exhausted:  r.exhausted.Load(),
		Rejected:   r.rejected.Load(),
	}
}

// backoff returns the delay before retry number attempt (1-based),
// exponential with deterministic jitter in [0.5, 1.5) of the base
// value. The jitter stream hashes the measurement identity, so a
// replay with the same seed backs off identically.
func (r *Robust) backoff(codelet, machine string, mode sim.Mode, attempt int) time.Duration {
	d := r.cfg.BaseBackoff << (attempt - 1)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "backoff|%d|%s|%s|%d|%d", r.cfg.JitterSeed, codelet, machine, mode, attempt)
	jitter := 0.5 + rng.New(h.Sum64()).Float64()
	return time.Duration(float64(d) * jitter)
}

// Measure runs the robust protocol for one codelet on one machine.
func (r *Robust) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	if r.cfg.Invocations > opts.Invocations {
		opts.Invocations = r.cfg.Invocations
	}
	machine := ""
	if opts.Machine != nil {
		machine = opts.Machine.Name
	}

	var lastErr error
	for attempt := 1; attempt <= r.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.attempts.Add(1)
		meas, err := r.measureOnce(ctx, p, c, opts)
		if err == nil {
			return r.summarize(meas), nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller gave up; don't reclassify its cancellation.
			return nil, ctx.Err()
		}
		if !fault.IsTransient(err) {
			r.permanents.Add(1)
			return nil, &Error{Codelet: c.Name, Machine: machine, Mode: opts.Mode, Attempts: attempt, Err: err}
		}
		r.transients.Add(1)
		if attempt == r.cfg.MaxAttempts {
			break
		}
		r.retries.Add(1)
		if err := r.cfg.Sleep(ctx, r.backoff(c.Name, machine, opts.Mode, attempt)); err != nil {
			return nil, err
		}
	}
	r.exhausted.Add(1)
	return nil, &Error{Codelet: c.Name, Machine: machine, Mode: opts.Mode, Attempts: r.cfg.MaxAttempts, Err: lastErr}
}

// measureOnce runs a single attempt under the per-attempt deadline.
func (r *Robust) measureOnce(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	attemptCtx := ctx
	if r.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		defer cancel()
	}
	meas, err := r.base.Measure(attemptCtx, p, c, opts)
	if err != nil && attemptCtx.Err() != nil && ctx.Err() == nil {
		// The attempt deadline fired (a hang was cut short); count it
		// and surface the deadline so IsTransient says retry.
		r.timeouts.Add(1)
		return nil, fmt.Errorf("attempt timed out after %v: %w", r.cfg.AttemptTimeout, context.DeadlineExceeded)
	}
	return meas, err
}

// summarize applies MAD outlier rejection across the invocation times
// and re-derives the median summary from the surviving invocations.
func (r *Robust) summarize(meas *sim.Measurement) *sim.Measurement {
	if r.cfg.MADK < 0 || len(meas.Invocations) < 3 {
		return meas
	}
	times := make([]float64, len(meas.Invocations))
	for i, inv := range meas.Invocations {
		times[i] = inv.Seconds
	}
	keep := stats.MADKeep(times, r.cfg.MADK)
	if len(keep) == len(times) {
		return meas
	}
	r.rejected.Add(int64(len(times) - len(keep)))
	kept := make([]float64, len(keep))
	for j, i := range keep {
		kept[j] = times[i]
	}
	meas.Seconds = stats.Median(kept)
	bestIdx, bestDiff := keep[0], -1.0
	for _, i := range keep {
		d := times[i] - meas.Seconds
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestIdx, bestDiff = i, d
		}
	}
	meas.Counters = meas.Invocations[bestIdx].Counters
	return meas
}

// Corpus for the internal/stage purity rule. The harness loads this
// package under the import path corpus/internal/stage, where
// determinism findings cannot be suppressed: the //fgbs:allow
// directives below do not silence their findings, and each directive
// is itself reported.
package stagepkg

import (
	"math/rand"
	"time"
)

// stamped shows a suppression that would work anywhere else being
// rejected here: the finding survives AND the directive is flagged.
func stamped() int64 {
	//fgbs:allow determinism cache freshness needs a timestamp // want "suppression is itself a finding"
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// salted draws randomness into a key, which would make equal inputs
// hash unequal across runs.
func salted() int64 {
	return rand.Int63() // want "bypasses internal/rng"
}

// pure is what the package is supposed to look like: no findings.
func pure(a, b int) int {
	return a + b
}

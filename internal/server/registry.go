package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
	"fgbs/internal/stage"
	"fgbs/internal/suites"
)

// registry owns one lazily-built Staged profile per suite. Profiling
// is the expensive step — seconds of simulation per suite — so the
// registry coalesces concurrent demand singleflight-style: the first
// request for a suite starts exactly one build, every later request
// (while it runs) waits on the same entry, and once built the staged
// profile is shared read-only forever (see pipeline.Profile's
// immutability contract).
//
// Persistence and memoization live in the pipeline's stage store: the
// registry resolves builds through a pipeline.Engine, which loads a
// previously saved profile from the store's disk directory and saves
// fresh builds back under key-qualified <suite>-<key>.json names (the
// bare <suite>.json files earlier releases wrote are still adopted,
// read-only, for measurer-free builds). The registry itself keeps no
// disk logic — it is a thin suite-name → stage-graph view, plus the
// failure policy below.
//
// Resilience: every build outcome feeds the suite's circuit breaker.
// Repeated build failures open it, after which requests fail fast (or
// serve the last good profile, marked stale) until a cooldown admits
// one half-open rebuild probe. A build that succeeds but carries
// failure markers (measurements lost to permanent faults) is kept and
// served — degraded data beats no data — but trips the suite breaker
// so a later probe can rebuild once the faults clear.
type registry struct {
	programs    func(string) ([]*ir.Program, error)
	seed        uint64
	workers     int
	measurer    fault.Measurer
	measurerKey string
	store       *stage.Store
	engine      *pipeline.Engine
	breakers    *breakerSet

	// ctx is the registry's lifetime: builds run detached from any
	// single request (a canceled requester must not kill the build the
	// coalesced waiters share) but die with the server.
	ctx  context.Context
	stop context.CancelFunc

	mu       sync.Mutex
	entries  map[string]*regEntry        // guarded by mu
	lastGood map[string]*pipeline.Staged // guarded by mu; newest served profile per suite

	builds    atomic.Int64 // profiling runs started
	coalesced atomic.Int64 // requests that joined an in-flight build
	diskLoads atomic.Int64 // builds satisfied from the stage store's disk tier
	peerLoads atomic.Int64 // builds satisfied by fetching a peer's artifact
	building  atomic.Int64 // builds currently in flight
	staleHits atomic.Int64 // requests answered from a degraded or last-good profile
}

// regEntry is one suite's build slot. ready is closed when st/err are
// final.
type regEntry struct {
	ready    chan struct{}
	st       *pipeline.Staged
	err      error
	degraded bool
}

// circuitOpenError is returned while a suite's breaker is open and no
// last-good profile exists to degrade onto.
type circuitOpenError struct {
	suite   string
	retryIn time.Duration
}

func (e *circuitOpenError) Error() string {
	return fmt.Sprintf("server: suite %s unavailable after repeated build failures; next probe in %.1fs", e.suite, e.retryIn.Seconds())
}

func newRegistry(cfg Config, breakers *breakerSet) *registry {
	programs := cfg.Programs
	if programs == nil {
		programs = suites.Programs
	}
	stageDir := cfg.StageDir
	if stageDir == "" {
		stageDir = cfg.ProfileDir
	}
	size := cfg.StageCacheSize
	if size <= 0 {
		size = 512
	}
	names := cfg.StageTiers
	if len(names) == 0 {
		names = stage.DefaultTierNames(stageDir, cfg.Peers)
	}
	tiers, err := stage.NewTierChain(names, stage.TierConfig{Dir: stageDir, Peers: cfg.Peers})
	if err != nil {
		// Config.StageTiers documents the contract: tier lists are
		// validated before the server is constructed (cmd/fgbsd does it
		// in flag parsing), so reaching here is a programming error.
		panic(fmt.Sprintf("server: invalid stage tier config: %v", err))
	}
	store := stage.NewTieredStore(size, tiers)
	ctx, stop := context.WithCancel(context.Background())
	return &registry{
		programs:    programs,
		seed:        cfg.Seed,
		workers:     cfg.Workers,
		measurer:    cfg.Measurer,
		measurerKey: cfg.MeasurerKey,
		store:       store,
		engine:      pipeline.NewEngine(store),
		breakers:    breakers,
		ctx:         ctx,
		stop:        stop,
		entries:     make(map[string]*regEntry),
		lastGood:    make(map[string]*pipeline.Staged),
	}
}

// Close cancels in-flight builds. Waiters receive the cancellation
// error.
func (r *registry) Close() { r.stop() }

func suiteKey(suite string) string { return "suite:" + suite }

// stageOpts assembles the engine inputs for one suite. DiskName seeds
// the engine's key-qualified <suite>-<key>.json layout; for
// measurer-free builds the engine also falls back to the bare
// <suite>.json earlier registries wrote, so old cache directories
// keep being adopted.
func (r *registry) stageOpts(suite string) pipeline.StageOptions {
	return pipeline.StageOptions{
		Options:     pipeline.Options{Seed: r.seed, Workers: r.workers, Measurer: r.measurer},
		MeasurerKey: r.measurerKey,
		DiskName:    suite + ".json",
	}
}

// Profile returns the suite's shared profile — Staged, unwrapped, for
// callers that only need the measurements.
func (r *registry) Profile(ctx context.Context, suite string) (*pipeline.Profile, bool, error) {
	st, stale, err := r.Staged(ctx, suite)
	if err != nil {
		return nil, stale, err
	}
	return st.Profile(), stale, nil
}

// Staged returns the suite's staged profile, building it at most once,
// plus a stale flag: true when the returned data is degraded (built
// under permanent faults) or is a retained last-good profile served
// because the current build is failing. ctx bounds this caller's wait,
// not the build itself.
func (r *registry) Staged(ctx context.Context, suite string) (*pipeline.Staged, bool, error) {
	key := suiteKey(suite)
	r.mu.Lock()
	e, ok := r.entries[suite]
	if !ok {
		if !r.breakers.allow(key) {
			lg := r.lastGood[suite]
			r.mu.Unlock()
			if lg != nil {
				r.staleHits.Add(1)
				return lg, true, nil
			}
			return nil, false, &circuitOpenError{suite: suite, retryIn: r.breakers.retryIn(key)}
		}
		e = &regEntry{ready: make(chan struct{})}
		r.entries[suite] = e
		r.mu.Unlock()
		// Detached: the build must survive this requester giving up,
		// because coalesced waiters share its outcome.
		//fgbs:allow goroutineleak detached by design; build outlives the requester so coalesced waiters share it
		go r.build(suite, e)
	} else {
		lg := r.lastGood[suite]
		r.mu.Unlock()
		select {
		case <-e.ready:
		default:
			r.coalesced.Add(1)
			// A rebuild probe is in flight behind an open breaker:
			// answer from the last good profile instead of making every
			// request pay the rebuild's latency.
			if lg != nil && r.breakers.isOpen(key) {
				r.staleHits.Add(1)
				return lg, true, nil
			}
		}
	}
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	if e.err != nil {
		r.mu.Lock()
		lg := r.lastGood[suite]
		r.mu.Unlock()
		if lg != nil {
			r.staleHits.Add(1)
			return lg, true, nil
		}
		return nil, false, e.err
	}
	if e.degraded {
		// Half-open: past the cooldown one request probes a rebuild,
		// hoping the faults behind the markers were transient.
		if r.breakers.allow(key) {
			if ne := r.swapEntry(suite, e); ne != nil {
				//fgbs:allow goroutineleak detached rebuild probe; its outcome is shared via the swapped entry
				go r.build(suite, ne)
				select {
				case <-ne.ready:
				case <-ctx.Done():
					return nil, false, ctx.Err()
				}
				if ne.err == nil {
					if ne.degraded {
						r.staleHits.Add(1)
					}
					return ne.st, ne.degraded, nil
				}
			}
		}
		r.staleHits.Add(1)
		return e.st, true, nil
	}
	return e.st, false, nil
}

// swapEntry atomically replaces e with a fresh build slot, or returns
// nil if another probe already replaced it.
func (r *registry) swapEntry(suite string, e *regEntry) *regEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[suite] != e {
		return nil
	}
	ne := &regEntry{ready: make(chan struct{})}
	r.entries[suite] = ne
	return ne
}

// build runs (or loads) the staged profile, publishes the outcome, and
// drives the suite's breaker. On failure the entry is removed so a
// later request can retry — a transient error (say, an unwritable
// cache file) must not wedge the suite forever.
func (r *registry) build(suite string, e *regEntry) {
	r.builds.Add(1)
	r.building.Add(1)
	defer r.building.Add(-1)
	e.st, e.err = r.buildStaged(suite)
	key := suiteKey(suite)
	switch {
	case e.err != nil:
		r.breakers.fail(key)
		r.mu.Lock()
		delete(r.entries, suite)
		r.mu.Unlock()
	case e.st.Profile().Degraded():
		e.degraded = true
		r.breakers.trip(key)
		r.tripDataBreakers(suite, e.st.Profile())
		r.setLastGood(suite, e.st)
	default:
		r.breakers.succeed(key)
		r.breakers.succeed("ref:" + suite)
		r.breakers.clearPrefix("target:" + suite + "/")
		r.setLastGood(suite, e.st)
	}
	close(e.ready)
}

func (r *registry) setLastGood(suite string, st *pipeline.Staged) {
	r.mu.Lock()
	// A degraded profile never displaces a clean one: the retained
	// profile is what open-circuit requests fall back on.
	if cur := r.lastGood[suite]; cur == nil || cur.Profile().Degraded() || !st.Profile().Degraded() {
		r.lastGood[suite] = st
	}
	r.mu.Unlock()
}

// tripDataBreakers opens the fine-grained breakers behind a degraded
// profile: one for the reference machine if any ground-truth
// measurement was lost, one per target with lost measurements.
func (r *registry) tripDataBreakers(suite string, prof *pipeline.Profile) {
	if anyMarked(prof.RefFailed) {
		r.breakers.trip("ref:" + suite)
	}
	for t, m := range prof.Targets {
		if t < len(prof.TargetFailed) && anyMarked(prof.TargetFailed[t]) {
			r.breakers.trip("target:" + suite + "/" + m.Name)
		}
	}
}

func anyMarked(row []bool) bool {
	for _, v := range row {
		if v {
			return true
		}
	}
	return false
}

// buildStaged resolves the suite through the stage graph. The engine
// handles disk (load-or-build-then-save, with degraded profiles kept
// off disk); the registry only translates the outcome into its
// counters.
func (r *registry) buildStaged(suite string) (*pipeline.Staged, error) {
	progs, err := r.programs(suite)
	if err != nil {
		return nil, err
	}
	st, out, err := r.engine.Profile(r.ctx, progs, r.stageOpts(suite))
	if err != nil {
		return nil, fmt.Errorf("server: profiling %s: %w", suite, err)
	}
	if out.Disk {
		r.diskLoads.Add(1)
	}
	if out.Tier == stage.TierPeer {
		r.peerLoads.Add(1)
	}
	return st, nil
}

// Loaded lists the suites with a ready profile (for /v1/suites).
func (r *registry) Loaded() map[string]*pipeline.Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*pipeline.Profile)
	for name, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out[name] = e.st.Profile()
			}
		default:
		}
	}
	return out
}

package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// echoRehydrate rebuilds a job that returns its own spec, so resumed
// results are trivially checkable against the persisted parameters.
func echoRehydrate(kind string, spec json.RawMessage) (Fn, error) {
	return func(ctx context.Context, pr *Progress) (any, error) {
		var v map[string]int
		if err := json.Unmarshal(spec, &v); err != nil {
			return nil, err
		}
		return v, nil
	}, nil
}

// TestRecoveryResumesIDCounter is the regression test for the latent
// ID collision: a restarted manager over a populated jobs dir must hand
// out IDs past every persisted record, never reusing one.
func TestRecoveryResumesIDCounter(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(Config{Workers: 1, Dir: dir})
	var lastID string
	for i := 0; i < 3; i++ {
		j, err := m1.Submit("fill", func(ctx context.Context, pr *Progress) (any, error) {
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		lastID = j.ID()
	}
	m1.Close()

	m2 := NewManager(Config{Workers: 1, Dir: dir})
	defer m2.Close()
	j, err := m2.Submit("fresh", func(ctx context.Context, pr *Progress) (any, error) {
		return "new", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() <= lastID {
		t.Errorf("restarted manager issued %s, not past persisted %s", j.ID(), lastID)
	}
	if j.ID() != "job-00000004" {
		t.Errorf("ID after 3 persisted jobs = %s, want job-00000004", j.ID())
	}
}

// TestRecoveryAdoptsTerminal pins that a done job survives a restart
// with its exact result bytes — raw JSON in, raw JSON out, no
// re-marshal that could reorder keys.
func TestRecoveryAdoptsTerminal(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(`{"answer":42}`)
	m1 := NewManager(Config{Workers: 1, Dir: dir})
	j, err := m1.SubmitSpec("echo", spec, func(ctx context.Context, pr *Progress) (any, error) {
		return map[string]int{"answer": 42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	want, _ := j.Result()
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2 := NewManager(Config{Workers: 1, Dir: dir})
	defer m2.Close()
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatalf("re-adopted job not found: %v", err)
	}
	s := j2.Snapshot()
	if s.State != StateDone || s.Kind != "echo" {
		t.Fatalf("re-adopted state = %s/%s, want done/echo", s.State, s.Kind)
	}
	res, ok := j2.Result()
	if !ok {
		t.Fatal("re-adopted done job has no result")
	}
	raw, isRaw := res.(json.RawMessage)
	if !isRaw {
		t.Fatalf("re-adopted result type = %T, want json.RawMessage", res)
	}
	if !bytes.Equal(raw, wantBytes) {
		t.Errorf("re-adopted result = %s, want %s", raw, wantBytes)
	}
}

// TestRecoveryResumesInterrupted pins the core durability contract: a
// job that was pending or running when the process died is rebuilt via
// Rehydrate, re-enqueued, marked interrupted, and runs to done.
func TestRecoveryResumesInterrupted(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash mid-run by writing the journal record a live
	// manager would have left behind: running, one attempt spent.
	rec := persistedJob{
		SchemaVersion: jobSchemaVersion,
		ID:            "job-00000001",
		Kind:          "echo",
		State:         StateRunning,
		Attempts:      1,
		Spec:          json.RawMessage(`{"answer":7}`),
	}
	writeRecordFile(t, dir, rec)

	m := NewManager(Config{Workers: 1, Dir: dir, Rehydrate: echoRehydrate})
	defer m.Close()
	if got := m.Stats().Resumed; got != 1 {
		t.Errorf("Stats().Resumed = %d, want 1", got)
	}
	j, err := m.Get("job-00000001")
	if err != nil {
		t.Fatalf("interrupted job not adopted: %v", err)
	}
	s := wait(t, j)
	if s.State != StateDone {
		t.Fatalf("resumed job state = %s (err %s), want done", s.State, s.Err)
	}
	if !s.Interrupted {
		t.Error("resumed job not marked interrupted")
	}
	if s.Attempts < 2 {
		t.Errorf("resumed job attempts = %d, want ≥2 (the lost run counts)", s.Attempts)
	}
	res, _ := j.Result()
	if v := res.(map[string]int)["answer"]; v != 7 {
		t.Errorf("resumed result = %v, want the spec's 7", res)
	}
	// The terminal record must reflect the completed re-run.
	pj := readRecordFile(t, dir, "job-00000001")
	if pj.State != StateDone || !pj.Interrupted {
		t.Errorf("journal after resume = %s/interrupted=%v, want done/true", pj.State, pj.Interrupted)
	}
}

// TestRecoveryWithoutRehydrate pins that interrupted jobs are adopted
// as failed — loudly pollable — when no hook can rebuild them.
func TestRecoveryWithoutRehydrate(t *testing.T) {
	dir := t.TempDir()
	writeRecordFile(t, dir, persistedJob{
		SchemaVersion: jobSchemaVersion,
		ID:            "job-00000001",
		Kind:          "echo",
		State:         StatePending,
		Spec:          json.RawMessage(`{"answer":1}`),
	})
	m := NewManager(Config{Workers: 1, Dir: dir})
	defer m.Close()
	j, err := m.Get("job-00000001")
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateFailed || !strings.Contains(s.Err, ErrNotResumable.Error()) {
		t.Errorf("adoption without Rehydrate = %s (%q), want failed/ErrNotResumable", s.State, s.Err)
	}
}

// TestRecoveryTombstone pins that a GC'd job stays dead across
// restarts and its ID stays reserved.
func TestRecoveryTombstone(t *testing.T) {
	dir := t.TempDir()
	writeRecordFile(t, dir, persistedJob{
		SchemaVersion: jobSchemaVersion,
		ID:            "job-00000005",
		Tombstone:     true,
	})
	m := NewManager(Config{Workers: 1, Dir: dir})
	defer m.Close()
	if _, err := m.Get("job-00000005"); !errors.Is(err, ErrNotFound) {
		t.Errorf("tombstoned job resurrected: err = %v", err)
	}
	j, err := m.Submit("fresh", func(ctx context.Context, pr *Progress) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-00000006" {
		t.Errorf("ID after tombstone 5 = %s, want job-00000006 (tombstones reserve IDs)", j.ID())
	}
}

// TestRecoverySkipsBadRecords covers the schema-version gate and
// truncated JSON: both are skipped with a log line naming the file and
// saying "delete or regenerate", and both still advance the ID
// counter so a fresh submit cannot collide with the surviving file.
func TestRecoverySkipsBadRecords(t *testing.T) {
	dir := t.TempDir()
	// A record from a future (or past) schema version.
	writeRecordFile(t, dir, persistedJob{
		SchemaVersion: jobSchemaVersion + 1,
		ID:            "job-00000003",
		Kind:          "echo",
		State:         StateDone,
	})
	// A torn write: truncated JSON.
	if err := os.WriteFile(filepath.Join(dir, "job-00000009.json"), []byte(`{"schemaVersion":1,"id":"job-0000`), 0o644); err != nil {
		t.Fatal(err)
	}

	var logs []string
	m := NewManager(Config{
		Workers: 1, Dir: dir,
		Logf: func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
	})
	defer m.Close()

	for _, id := range []string{"job-00000003", "job-00000009"} {
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("bad record %s was adopted: err = %v", id, err)
		}
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "job-00000003.json") || !strings.Contains(joined, fmt.Sprintf("journal version %d, this build reads version %d", jobSchemaVersion+1, jobSchemaVersion)) {
		t.Errorf("version mismatch not logged with file name: %q", joined)
	}
	if !strings.Contains(joined, "job-00000009.json") || !strings.Contains(joined, "corrupt job record") {
		t.Errorf("truncated record not logged with file name: %q", joined)
	}
	if !strings.Contains(joined, "delete or regenerate") {
		t.Errorf("logs missing the remediation hint: %q", joined)
	}
	// Even unreadable records reserve their IDs.
	j, err := m.Submit("fresh", func(ctx context.Context, pr *Progress) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-00000010" {
		t.Errorf("ID after skipped records 3 and 9 = %s, want job-00000010", j.ID())
	}
}

// TestCancelDurableStaysCanceled pins the cancel-vs-crash distinction:
// an explicit Cancel is journaled, so the job stays canceled after a
// restart instead of resuming.
func TestCancelDurableStaysCanceled(t *testing.T) {
	dir := t.TempDir()
	// No workers would be simpler, but Workers is clamped ≥1; submit
	// through a stalled queue instead: occupy the single worker, then
	// cancel the queued durable job while it is still pending.
	block := make(chan struct{})
	started := make(chan struct{})
	m1 := NewManager(Config{Workers: 1, Dir: dir, Rehydrate: echoRehydrate})
	blocker, err := m1.Submit("block", func(ctx context.Context, pr *Progress) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j, err := m1.SubmitSpec("echo", json.RawMessage(`{"answer":3}`), func(ctx context.Context, pr *Progress) (any, error) {
		return map[string]int{"answer": 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	close(block)
	wait(t, blocker)
	wait(t, j)
	m1.Close()

	m2 := NewManager(Config{Workers: 1, Dir: dir, Rehydrate: echoRehydrate})
	defer m2.Close()
	if got := m2.Stats().Resumed; got != 0 {
		t.Errorf("canceled job resumed: Stats().Resumed = %d", got)
	}
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if s := j2.Snapshot(); s.State != StateCanceled {
		t.Errorf("canceled durable job after restart = %s, want canceled", s.State)
	}
}

// writeRecordFile plants a journal record as a crashed process would
// have left it.
func writeRecordFile(t *testing.T, dir string, pj persistedJob) {
	t.Helper()
	data, err := json.Marshal(pj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, pj.ID+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// readRecordFile decodes one journal record.
func readRecordFile(t *testing.T, dir, id string) persistedJob {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var pj persistedJob
	if err := json.Unmarshal(data, &pj); err != nil {
		t.Fatal(err)
	}
	return pj
}

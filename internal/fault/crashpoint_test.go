package fault

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestCrashpointUnarmedIsNoop pins the fast path: with no site armed
// (or a different one armed), Crashpoint returns. If it ever aborted
// here the test process itself would die, so mere completion is the
// assertion.
func TestCrashpointUnarmedIsNoop(t *testing.T) {
	t.Setenv(CrashEnv, "")
	Crashpoint(CrashAfterJournalWrite)
	t.Setenv(CrashEnv, CrashBeforeRename)
	Crashpoint(CrashAfterJournalWrite)
	Crashpoint("") // the unnamed site can never be armed
}

// TestCrashpointArmedAborts re-executes the test binary with the site
// armed and asserts the child dies with CrashExitCode — the subprocess
// pattern, since an armed crashpoint kills its own process by design.
func TestCrashpointArmedAborts(t *testing.T) {
	if os.Getenv("FGBS_CRASHPOINT_HELPER") == "1" {
		Crashpoint(CrashMidArtifactWrite)
		os.Exit(0) // not reached when armed correctly
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashpointArmedAborts$")
	cmd.Env = append(os.Environ(),
		"FGBS_CRASHPOINT_HELPER=1",
		CrashEnv+"="+CrashMidArtifactWrite,
	)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("armed crashpoint did not abort the child (err %v, output %q)", err, out)
	}
	if code := ee.ExitCode(); code != CrashExitCode {
		t.Errorf("exit code = %d, want %d (output %q)", code, CrashExitCode, out)
	}
	if !strings.Contains(string(out), "crashpoint stage/mid-artifact-write armed") {
		t.Errorf("abort did not announce its site: %q", out)
	}
}

// Package-level function summaries. The flow-sensitive checks need a
// little cross-function knowledge within one package: lockorder wants
// "which locks does this callee acquire" so a call made under a held
// lock contributes acquisition-graph edges, and goroutineleak wants
// "does this function observe ctx.Done()" so `go m.worker()` can be
// judged without inlining. The summary pass computes those facts once
// per package with go/types resolution (no name matching) and caches
// the result on the Package.
//
// Summaries are deliberately shallow: one package, declared functions
// and methods only, no pointer analysis. A call that cannot be
// resolved to a same-package *types.Func contributes nothing, which
// errs toward fewer edges (lockorder may miss an exotic cycle) and
// toward findings (goroutineleak treats an unresolvable goroutine body
// as not observing ctx) — both the conservative direction for the
// respective check.
package analysis

import (
	"go/ast"
	"go/types"
)

// lockMode distinguishes write locks from read locks.
type lockMode int

const (
	lockWrite lockMode = iota // Lock / TryLock / Unlock
	lockRead                  // RLock / TryRLock / RUnlock
)

// lockOp classifies one sync mutex call site.
type lockOp struct {
	// class is the stable lock identity, e.g. "Manager.mu" for a field
	// mutex, "registerMu" for a package-level one. Empty when the
	// mutex expression could not be named (skip the site).
	class string
	// mode is the read/write flavor.
	mode lockMode
	// acquire is true for Lock/RLock/TryLock/TryRLock, false for the
	// unlock family.
	acquire bool
	call    *ast.CallExpr
}

// funcSummary holds the per-function facts.
type funcSummary struct {
	obj  *types.Func
	decl *ast.FuncDecl
	// acquires is the set of lock classes this function's body locks
	// directly (including inside its function literals — they run, at
	// the latest, when invoked from this body or deferred).
	acquires map[string]bool
	// calls lists same-package callees, for the transitive closure.
	calls map[*types.Func]bool
	// observesDone is true when the body (or a nested literal) receives
	// from ctx.Done() for some context value.
	observesDone bool
	// hasCtxParam is true when the declared signature takes a
	// context.Context.
	hasCtxParam bool
}

// pkgSummary is the package-wide table plus its transitive lock
// closure.
type pkgSummary struct {
	funcs map[*types.Func]*funcSummary
	// closed maps each function to every lock class reachable through
	// same-package calls (its own acquisitions included).
	closed map[*types.Func]map[string]bool
	// doneClosed marks functions that observe ctx.Done() directly or
	// through same-package callees.
	doneClosed map[*types.Func]bool
}

// observesDoneClosed reports whether obj observes ctx.Done(),
// transitively through same-package calls. False for functions the
// summary does not know (other packages, dynamic calls).
func (s *pkgSummary) observesDoneClosed(obj *types.Func) bool {
	return s.doneClosed[obj]
}

// summary returns the package's function summary table, building it on
// first use. Checks for one package always run on one goroutine (the
// parallel driver parallelizes across packages), so no locking is
// needed here.
func (p *Package) summary() *pkgSummary {
	if p.funcSummaries == nil {
		p.funcSummaries = buildSummary(p)
	}
	return p.funcSummaries
}

func buildSummary(p *Package) *pkgSummary {
	s := &pkgSummary{
		funcs:  make(map[*types.Func]*funcSummary),
		closed: make(map[*types.Func]map[string]bool),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fs := &funcSummary{
				obj:      obj,
				decl:     fd,
				acquires: make(map[string]bool),
				calls:    make(map[*types.Func]bool),
			}
			if sig, ok := obj.Type().(*types.Signature); ok {
				fs.hasCtxParam = signatureTakesContext(sig)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := classifyLockCall(p, call); ok {
					if op.acquire && op.class != "" {
						fs.acquires[op.class] = true
					}
					return true
				}
				if callee := calleeFunc(p, call); callee != nil && callee.Pkg() == p.Types {
					fs.calls[callee] = true
				}
				if isDoneObservation(p, call) {
					fs.observesDone = true
				}
				return true
			})
			s.funcs[obj] = fs
		}
	}
	// Transitive closure of lock acquisitions over same-package calls.
	for obj := range s.funcs {
		s.closed[obj] = s.closeLocks(obj, make(map[*types.Func]bool))
	}
	// Fixpoint for Done observation: a function observes cancellation
	// if it does so directly or any same-package callee does.
	s.doneClosed = make(map[*types.Func]bool)
	for obj, fs := range s.funcs {
		if fs.observesDone {
			s.doneClosed[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fs := range s.funcs {
			if s.doneClosed[obj] {
				continue
			}
			for callee := range fs.calls {
				if s.doneClosed[callee] {
					s.doneClosed[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return s
}

// closeLocks unions the lock classes reachable from obj through
// same-package calls.
func (s *pkgSummary) closeLocks(obj *types.Func, visiting map[*types.Func]bool) map[string]bool {
	if done, ok := s.closed[obj]; ok && done != nil {
		return done
	}
	if visiting[obj] {
		return nil // recursion: the outer frame completes the union
	}
	visiting[obj] = true
	fs := s.funcs[obj]
	out := make(map[string]bool)
	if fs == nil {
		return out
	}
	for c := range fs.acquires {
		out[c] = true
	}
	for callee := range fs.calls {
		for c := range s.closeLocks(callee, visiting) {
			out[c] = true
		}
	}
	return out
}

// acquiredBy returns every lock class the named function may acquire,
// transitively through same-package calls. Nil-safe for functions the
// summary does not know.
func (s *pkgSummary) acquiredBy(obj *types.Func) map[string]bool {
	return s.closed[obj]
}

// classifyLockCall recognizes calls to the sync.Mutex / sync.RWMutex
// lock family, resolved through the type checker so shadowed names and
// non-sync Lock methods cannot confuse it.
func classifyLockCall(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockOp{}, false
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return lockOp{}, false
	}
	typeName := named.Obj().Name()
	if typeName != "Mutex" && typeName != "RWMutex" {
		return lockOp{}, false
	}
	op := lockOp{call: call}
	switch fn.Name() {
	case "Lock", "TryLock":
		op.mode, op.acquire = lockWrite, true
	case "Unlock":
		op.mode, op.acquire = lockWrite, false
	case "RLock", "TryRLock":
		op.mode, op.acquire = lockRead, true
	case "RUnlock":
		op.mode, op.acquire = lockRead, false
	default:
		return lockOp{}, false // RLocker etc.
	}
	op.class = lockClass(p, sel.X)
	return op, true
}

// lockClass names the mutex a lock-family method is called on, stably
// within the package: "Type.field" for a struct-field mutex,
// "Type.Mutex"/"Type.RWMutex" for an embedded one, the variable name
// for a package-level or local mutex. Empty when the expression is too
// dynamic to name (map index, call result) — the caller skips those.
func lockClass(p *Package, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		// A bare mutex variable, or — for an embedded mutex — the
		// enclosing struct value.
		if tv, ok := p.Info.Types[e]; ok && !isMutexType(tv.Type) {
			if name := namedTypeName(tv.Type); name != "" {
				return name + "." + mutexKindName(tv.Type)
			}
		}
		return e.Name
	case *ast.SelectorExpr:
		if s := p.Info.Selections[e]; s != nil {
			recvName := namedTypeName(s.Recv())
			if tv, ok := p.Info.Types[e]; ok && !isMutexType(tv.Type) {
				// Embedded mutex behind a field: x.inner.Lock() where
				// inner embeds the mutex.
				if name := namedTypeName(tv.Type); name != "" {
					return name + "." + mutexKindName(tv.Type)
				}
			}
			if recvName != "" {
				return recvName + "." + e.Sel.Name
			}
			return e.Sel.Name
		}
		// Package-qualified variable: pkg.Mu.
		if x, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.Uses[x].(*types.PkgName); isPkg {
				return x.Name + "." + e.Sel.Name
			}
		}
		return ""
	case *ast.ParenExpr:
		return lockClass(p, e.X)
	case *ast.UnaryExpr:
		return lockClass(p, e.X) // &mu
	case *ast.StarExpr:
		return lockClass(p, e.X)
	default:
		return ""
	}
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex itself.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexKindName returns "Mutex" or "RWMutex" for the lock embedded in
// t's method set; used to name embedded-mutex classes.
func mutexKindName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if m, _, _ := types.LookupFieldOrMethod(t, true, nil, "RLock"); m != nil {
		return "RWMutex"
	}
	return "Mutex"
}

// namedTypeName returns the base named-type name of t, unwrapping one
// pointer level; "" for unnamed types.
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for dynamic calls (function values, interface methods the
// checker cannot pin, built-ins).
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isDoneObservation reports whether call is ctx.Done() for a
// context.Context-typed receiver. The callers treat any syntactic use
// (<-ctx.Done(), a select case, passing the channel on) as observing
// cancellation — over-approximate, but a Done() call that is then
// ignored is vanishingly rare and cheap to annotate.
func isDoneObservation(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return false
	}
	return isContextType(tv.Type)
}

// isWaitGroupMethod reports whether call invokes the named method
// (Done, Wait, Add) on a sync.WaitGroup.
func isWaitGroupMethod(p *Package, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeName(recv.Type()) == "WaitGroup"
}

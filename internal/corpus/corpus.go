// Package corpus generates synthetic benchmark suites: parameterized
// families of IR codelets (stencils, reductions, dense and sparse
// matrix-vector products, FFT-style butterflies, histograms) whose
// instances span the axes the subsetting methodology cares about —
// memory footprint, access stride, data precision, and branchiness —
// plus a composer that assembles whole synthetic "applications" from
// family codelets over shared arrays.
//
// The hand-built NR and NAS suites exercise the pipeline on a few
// dozen codelets; every scaling claim needs workloads of arbitrary
// size. "Characterizing and Subsetting Big Data Workloads" applies the
// same clustering methodology to a generated workload class, and
// "Machines are benchmarked by code, not algorithms" is why the
// generator's knobs (stride, precision, predication) are first-class
// axes rather than fixed fixtures: tiny source-level changes are
// exactly what moves a codelet between clusters.
//
// Determinism is the package contract. Every codelet draws all of its
// randomness from one sub-seed that is a pure function of (suite seed,
// family, index) — the trialSeeds idiom of internal/pipeline lifted to
// a keyed form — so a generated suite is byte-identical regardless of
// generation order or worker count, and a suite name plus seed fully
// describes hundreds of codelets in one line.
package corpus

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"

	"fgbs/internal/ir"
	"fgbs/internal/rng"
)

// Axis is one generator knob of a family: a named dimension with the
// discrete settings an instance draws from. Axes are documentation and
// contract at once — `fgbs corpus` prints them, and the draw consumes
// exactly one value per axis in declaration order, which is what keeps
// a codelet's stream stable as families evolve (appending a new axis
// after the existing ones changes no prior draw).
type Axis struct {
	Name   string
	Doc    string
	Values []string
}

// String renders the axis as "name=v1|v2|v3" for listings.
func (a Axis) String() string {
	return a.Name + "=" + strings.Join(a.Values, "|")
}

// Family is one parameterized codelet family.
type Family struct {
	Name string
	Doc  string
	Axes []Axis
	// generate builds the family's arrays and codelet body into b,
	// drawing each axis exactly once in declaration order.
	generate func(b *build) *ir.Codelet
}

// families holds the registry, keyed by name. It is populated by
// init in families.go and immutable afterwards.
var families = map[string]*Family{}

// registerFamily panics on duplicates: families are static package
// data, so a collision is a build error.
func registerFamily(f *Family) {
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("corpus: duplicate family %q", f.Name))
	}
	families[f.Name] = f
}

// FamilyNames returns the registered family names, sorted.
func FamilyNames() []string {
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FamilyByName returns a family's descriptor; the error for an unknown
// name lists the valid ones.
func FamilyByName(name string) (*Family, error) {
	f := families[name]
	if f == nil {
		return nil, fmt.Errorf("corpus: unknown family %q (valid: %s)",
			name, strings.Join(FamilyNames(), ", "))
	}
	return f, nil
}

// codeletSeed derives the per-codelet generator seed as a pure
// function of (suite seed, family, index): the family name is folded
// through FNV-64a, mixed with the suite seed, and the result is
// advanced through one SplitMix64 step per component so nearby indices
// land in unrelated streams. Nothing about generation order, worker
// count, or sibling codelets can influence the value.
func codeletSeed(seed uint64, family string, index int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	r := rng.New(seed ^ h.Sum64())
	r.Uint64()
	base := r.Uint64()
	return rng.New(base + uint64(index)).Uint64()
}

// build is the per-codelet generation context handed to family
// builders: the destination program, the codelet's private stream, the
// axis values drawn so far (for the Pattern string), and — in app
// composition — the shared array pool.
type build struct {
	p      *ir.Program
	r      *rng.RNG
	chosen []string
	// footCap, when > 0, clamps the element count any footprint axis
	// resolves to. Smoke-sized suites use it to stay fast under the
	// race detector without consuming the stream differently.
	footCap int64
	// pool is non-nil in app composition: arrays are then served from
	// the application's shared working set instead of created fresh.
	pool *arrayPool
	// arrayN numbers fresh arrays within the program.
	arrayN *int
}

// draw picks one setting of ax and records it for the Pattern string.
func (b *build) draw(ax Axis) string {
	v := ax.Values[b.r.Intn(len(ax.Values))]
	b.chosen = append(b.chosen, ax.Name+"="+v)
	return v
}

// sizeParam binds (or reuses) an integer size parameter for elems
// elements. Parameter names are value-keyed ("n4096"), so codelets
// composed into one application share parameters exactly when they
// share sizes and can never collide.
func (b *build) sizeParam(elems int64) string {
	name := fmt.Sprintf("n%d", elems)
	if _, ok := b.p.Params[name]; !ok {
		b.p.SetParam(name, elems)
	}
	return name
}

// capped applies the build's footprint cap.
func (b *build) capped(elems int64) int64 {
	if b.footCap > 0 && elems > b.footCap {
		return b.footCap
	}
	return elems
}

// array declares (or, in app composition, reuses) an array of dt with
// the given dimensions and integer initialization. Standalone codelets
// always get fresh arrays; composed codelets draw from the
// application's pool so neighboring codelets share working state.
func (b *build) array(dt ir.DType, init ir.IntInit, dims ...ir.Affine) string {
	if b.pool != nil {
		return b.pool.get(b, dt, init, dims)
	}
	return b.fresh(dt, init, dims)
}

// fresh declares a new uniquely named array.
func (b *build) fresh(dt ir.DType, init ir.IntInit, dims []ir.Affine) string {
	name := fmt.Sprintf("a%d", *b.arrayN)
	*b.arrayN++
	a := b.p.AddArray(name, dt, dims...)
	a.Init = init
	return name
}

// scalar declares a fresh scalar cell (never shared: accumulators and
// temporaries are private to their codelet).
func (b *build) scalar(dt ir.DType) string {
	name := fmt.Sprintf("s%d", *b.arrayN)
	*b.arrayN++
	b.p.AddScalar(name, dt)
	return name
}

// cf returns a floating constant of the requested precision.
func (b *build) cf(dt ir.DType, v float64) ir.Expr {
	if dt == ir.F32 {
		return ir.CF32(v)
	}
	return ir.CF(v)
}

// weight draws a small nonzero coefficient in (0.05, 1.05).
func (b *build) weight(dt ir.DType) ir.Expr {
	return b.cf(dt, 0.05+b.r.Float64())
}

// clampify wraps e in level predicated select operations — the IR's
// model of data-dependent branches (compare-and-select, the form
// if-conversion gives branchy inner loops). The branchiness axis feeds
// the min/max op mix the feature catalog observes.
func (b *build) clampify(dt ir.DType, e ir.Expr, level int) ir.Expr {
	if level >= 1 {
		e = ir.MaxE(e, b.cf(dt, 0))
	}
	if level >= 2 {
		e = ir.MinE(e, b.cf(dt, 1e6))
	}
	return e
}

// Shared axes. Footprints are expressed against the CacheScale-scaled
// hierarchy of internal/arch: "l2" parks the working set in the mid
// levels, "llc" in the last level, "mem" streams past everything.
var (
	axDtype = Axis{Name: "dtype", Doc: "element precision", Values: []string{"f64", "f32"}}

	axBranch = Axis{Name: "branchiness", Doc: "predicated selects wrapped around the update (if-conversion)",
		Values: []string{"none", "low", "high"}}

	axStride = Axis{Name: "stride", Doc: "constant access stride in elements",
		Values: []string{"1", "2", "4", "8"}}

	axFoot1D = Axis{Name: "footprint", Doc: "principal 1-D working set",
		Values: []string{"l2", "llc", "mem"}}

	axFoot2D = Axis{Name: "footprint", Doc: "principal 2-D working set",
		Values: []string{"l2", "llc", "mem"}}
)

// foot1DElems maps the 1-D footprint axis to element counts.
func foot1DElems(v string) int64 {
	switch v {
	case "l2":
		return 4096 // 32 KB of f64: past scaled L1, resident in L2/L3
	case "llc":
		return 32768 // 256 KB: last-level resident
	default:
		return 131072 // 1 MB: streams past every scaled cache
	}
}

// foot2DSide maps the 2-D footprint axis to a square grid side.
func foot2DSide(v string) int64 {
	switch v {
	case "l2":
		return 64 // 32 KB of f64
	case "llc":
		return 160 // 200 KB
	default:
		return 288 // 663 KB
	}
}

// branchLevel maps the branchiness axis to a clampify level.
func branchLevel(v string) int {
	switch v {
	case "low":
		return 1
	case "high":
		return 2
	default:
		return 0
	}
}

// strideOf parses the stride axis.
func strideOf(v string) int64 {
	var s int64
	fmt.Sscanf(v, "%d", &s)
	return s
}

// generateInto runs one family build against an existing program (the
// unit both standalone generation and app composition share). The
// codelet is named, stamped with its provenance, validated, and
// attached to b.p.
func generateInto(b *build, f *Family, name string, seed uint64, index int) error {
	c := f.generate(b)
	c.Name = name
	c.Pattern = fmt.Sprintf("SYN %s: %s", f.Name, strings.Join(b.chosen, " "))
	c.SourceRef = fmt.Sprintf("SYN/%s/%05d#%d", f.Name, index, seed)
	if c.Invocations == 0 {
		// Synthetic codelets live in harness loops like PolyBench
		// kernels; the draw keeps the invocation-reduction economics
		// heterogeneous across the suite.
		c.Invocations = 10 + b.r.Intn(51)
	}
	if err := b.p.AddCodelet(c); err != nil {
		return fmt.Errorf("corpus: %s: %w", name, err)
	}
	return nil
}

// Dump renders programs in a canonical text form: Program.Source plus
// the generator-relevant fields it omits (uncovered fraction, integer
// array initialization). Byte-equality of dumps is byte-equality of
// suites — the CLI emits this form and the determinism tests compare
// it.
func Dump(progs []*ir.Program) string {
	var sb strings.Builder
	for i, p := range progs {
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "// uncovered: %.6f\n", p.UncoveredFraction)
		for _, a := range p.Arrays() {
			if a.DT == ir.I64 && a.Init.Kind != ir.IntInitZero {
				kind := "uniform"
				if a.Init.Kind == ir.IntInitMod {
					kind = "mod"
				}
				fmt.Fprintf(&sb, "// init %s: %s [0, %s)\n", a.Name, kind, a.Init.Bound.String())
			}
		}
		sb.WriteString(p.Source())
	}
	return sb.String()
}

// Generate builds codelet index of the named family under the suite
// seed as a standalone single-codelet program (the shape the NR and
// poly suites use). The result is a pure function of the three
// arguments.
func Generate(family string, seed uint64, index int) (*ir.Program, error) {
	f, err := FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return generateOne(f, seed, index, 0)
}

func generateOne(f *Family, seed uint64, index int, footCap int64) (*ir.Program, error) {
	name := fmt.Sprintf("%s_%05d", f.Name, index)
	p := ir.NewProgram(name)
	p.UncoveredFraction = 0
	n := 0
	b := &build{p: p, r: rng.New(codeletSeed(seed, f.Name, index)), footCap: footCap, arrayN: &n}
	if err := generateInto(b, f, name, seed, index); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: generated program %s invalid: %w", name, err)
	}
	return p, nil
}

// GenerateFamily builds codelets 0..n-1 of one family, each a
// standalone program, fanning the independent builds across workers
// (0 = GOMAXPROCS). Output is byte-identical at every worker count:
// slot i depends only on (family, seed, i).
func GenerateFamily(family string, seed uint64, n, workers int) ([]*ir.Program, error) {
	f, err := FamilyByName(family)
	if err != nil {
		return nil, err
	}
	picks := make([]*Family, n)
	for i := range picks {
		picks[i] = f
	}
	return generateAll(picks, seed, workers, 0)
}

// Mixed builds n standalone codelets cycling round-robin through every
// family (sorted order), under one suite seed. Worker semantics match
// GenerateFamily.
func Mixed(seed uint64, n, workers int) ([]*ir.Program, error) {
	return mixedCapped(seed, n, workers, 0)
}

func mixedCapped(seed uint64, n, workers int, footCap int64) ([]*ir.Program, error) {
	names := FamilyNames()
	picks := make([]*Family, n)
	for i := range picks {
		picks[i] = families[names[i%len(names)]]
	}
	return generateAll(picks, seed, workers, footCap)
}

// generateAll fans the per-index builds across workers. Each slot is
// generated from its own sub-seed, so scheduling cannot reorder
// anything observable.
func generateAll(picks []*Family, seed uint64, workers int, footCap int64) ([]*ir.Program, error) {
	return fanOut(len(picks), workers, func(i int) (*ir.Program, error) {
		return generateOne(picks[i], seed, i, footCap)
	})
}

// fanOut runs gen(0..n-1) across workers (0 = GOMAXPROCS) into slot
// order. gen must be a pure function of its index — that, not the
// scheduling, is what keeps fan-out deterministic.
func fanOut(n, workers int, gen func(i int) (*ir.Program, error)) ([]*ir.Program, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	progs := make([]*ir.Program, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			progs[i], errs[i] = gen(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return progs, nil
}

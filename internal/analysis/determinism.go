package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismCheck guards the reproducibility contract PR 2's parallel
// runners rely on: results must be byte-identical across worker counts
// and reruns. That only holds when every random draw flows through a
// seeded internal/rng stream and every timestamp comes from an
// injected clock (the jobs.now hook pattern) — so any reference to
// time.Now or to math/rand's functions is a finding, module-wide.
// Wall-clock pacing (time.Sleep, After, Tick, NewTimer, NewTicker) is
// flagged too: a hard-coded sleep makes chaos schedules replay in real
// time instead of instantly, so pacing must flow through an injectable
// hook (the measure.Config.Sleep pattern). Packages whose import path
// ends in internal/fault or internal/rng are exempt from the pacing
// rule only — fault injection delays on the wall clock by design, and
// rng is the sanctioned randomness source — but time.Now stays
// forbidden even there. Packages whose import path ends in
// internal/bench get the inverse carve-out: elapsed wall time is the
// benchmark runner's product, not a side effect, so time.Now is
// allowed there — while pacing and math/rand stay forbidden (bench
// workloads must be identical from run to run, so their randomness
// still flows through internal/rng). Infrastructure that legitimately
// reads the wall clock (HTTP metrics, uptime) carries an //fgbs:allow
// determinism annotation; the deterministic pipeline packages
// (internal/cluster, features, ga, pipeline, predict, represent, sim,
// stats, ir, extract, compile) must never need one.
//
// internal/stage is held to a stricter standard still: its key
// hashing is the foundation every cached artifact's identity rests
// on, so the package must stay observably pure. There, determinism
// findings cannot be suppressed at all — an //fgbs:allow determinism
// directive inside internal/stage is itself reported as a finding.
var determinismCheck = &Check{
	Name: "determinism",
	Doc:  "forbid time.Now, wall-clock sleeps, math/rand, and os.Exit-style aborts: use internal/rng streams, injected clocks, sleep hooks, and returned errors",
	run:  runDeterminism,
}

// wallClockExempt reports whether pkg may pace on the wall clock.
// Matching by path suffix keeps the corpus loadable under synthetic
// import paths while pinning the real tree's internal/fault and
// internal/rng.
func wallClockExempt(path string) bool {
	return strings.HasSuffix(path, "internal/fault") || strings.HasSuffix(path, "internal/rng")
}

// benchTimingExempt reports whether pkg may read time.Now: the
// benchmark runner measures elapsed wall time as its product. The
// exemption is deliberately narrow — pacing and math/rand remain
// forbidden in internal/bench, and the same suffix matching as
// wallClockExempt keeps it path-scoped, not blanket.
func benchTimingExempt(path string) bool {
	return strings.HasSuffix(path, "internal/bench")
}

// abortExempt reports whether pkg may abort the process. Only two
// places are sanctioned: internal/fault (the deterministic crashpoint
// hooks abort by design — that is the durability harness's kill
// switch) and main packages (a CLI's error exit). Everywhere else an
// os.Exit-style abort skips deferred cleanup and journal writes, which
// is exactly what the crash-safety contract must never do silently.
func abortExempt(p *Pass) bool {
	return strings.HasSuffix(p.Pkg.Path, "internal/fault") || p.Pkg.Types.Name() == "main"
}

// stagePure reports whether pkg is the content-addressing engine,
// where determinism findings are unsuppressable (equal inputs must
// hash to equal keys, so nothing impure can be justified away).
func stagePure(path string) bool {
	return strings.HasSuffix(path, "internal/stage")
}

func runDeterminism(p *Pass) {
	pure := stagePure(p.Pkg.Path)
	report := p.Reportf
	if pure {
		report = p.ReportfNoSuppress
		// The suppression itself is the defect here: a cache key
		// justified into impurity silently stops matching across runs.
		for key, dirs := range p.Pkg.allows {
			for _, a := range dirs {
				if a.check == "determinism" {
					p.reportAt(token.Position{Filename: key.file, Line: key.line}, true,
						"internal/stage key hashing must stay pure: this //fgbs:allow determinism suppression is itself a finding (reason given: %q)", a.reason)
				}
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on an injected *rand.Rand) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now":
					if !benchTimingExempt(p.Pkg.Path) {
						report(sel.Pos(), "time.Now reads the wall clock; inject a clock (the jobs.now hook pattern) so runs stay reproducible")
					}
				case "Sleep", "After", "Tick", "NewTimer", "NewTicker":
					if !wallClockExempt(p.Pkg.Path) {
						report(sel.Pos(), "time.%s paces on the wall clock; route delays through an injectable sleep hook (the measure.Config.Sleep pattern) so chaos schedules replay instantly", obj.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				report(sel.Pos(), "%s.%s bypasses internal/rng; all randomness must come from a seeded rng.RNG stream", obj.Pkg().Name(), obj.Name())
			case "os":
				if obj.Name() == "Exit" && !abortExempt(p) {
					report(sel.Pos(), "os.Exit aborts the process mid-flight, skipping deferred cleanup and journal writes; return an error, or route deliberate aborts through fault.Crashpoint")
				}
			case "log":
				switch obj.Name() {
				case "Fatal", "Fatalf", "Fatalln":
					if !abortExempt(p) {
						report(sel.Pos(), "log.%s aborts the process mid-flight, skipping deferred cleanup and journal writes; return an error, or route deliberate aborts through fault.Crashpoint", obj.Name())
					}
				}
			}
			return true
		})
	}
}

// Intra-procedural control-flow graphs. The flow-sensitive checks
// (lockorder's release-on-every-path analysis in particular) need to
// reason about *paths* through a function body, not just its syntax
// tree, so this file builds a small statement-level CFG: every
// statement becomes a node, edges follow Go's control flow — if/else,
// for and range loops, switch and select dispatch, break, continue,
// goto, labeled statements, returns — and a distinguished exit node
// collects every way out of the function (explicit returns and falling
// off the end). Statements are atomic: the analyses process the calls
// inside one statement in source order, which is exactly Go's
// evaluation order for the lock/unlock pairs they care about.
//
// The builder is deliberately conservative where precision stops
// paying for itself: panics terminate a path (deferred unlocks run
// during unwinding, so a lock held at a panic is not a leak), and a
// function using goto in a way the label map cannot resolve is marked
// unanalyzable rather than analyzed wrongly.
package analysis

import (
	"go/ast"
)

// cfgNode is one statement (or synthetic entry/exit point) in the
// graph.
type cfgNode struct {
	// stmt is the statement this node executes; nil for the synthetic
	// entry and exit nodes.
	stmt ast.Stmt
	// succs are the possible next nodes.
	succs []*cfgNode
	// index is the node's position in cfg.nodes, for dense worklists.
	index int
}

// cfg is one function body's control-flow graph.
type cfg struct {
	entry *cfgNode
	exit  *cfgNode
	nodes []*cfgNode
	// unanalyzable is set when the body uses control flow the builder
	// does not model (an unresolved goto); checks skip such functions
	// instead of reporting from a wrong graph.
	unanalyzable bool
}

// cfgBuilder carries the loop/label context while walking a body.
type cfgBuilder struct {
	g *cfg
	// breakTargets / continueTargets are stacks: innermost last.
	breakTargets    []*cfgNode
	continueTargets []*cfgNode
	// labels maps a label name to its labeled statement's node, for
	// goto resolution and labeled break/continue.
	labels map[string]*cfgNode
	// labeledBreak/labeledContinue map label names to the targets a
	// "break L" / "continue L" jumps to.
	labeledBreak    map[string]*cfgNode
	labeledContinue map[string]*cfgNode
	// pendingGotos are goto statements seen before their label.
	pendingGotos map[string][]*cfgNode
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{}
	g.entry = g.newNode(nil)
	g.exit = g.newNode(nil)
	b := &cfgBuilder{
		g:               g,
		labels:          make(map[string]*cfgNode),
		labeledBreak:    make(map[string]*cfgNode),
		labeledContinue: make(map[string]*cfgNode),
		pendingGotos:    make(map[string][]*cfgNode),
	}
	last := b.stmts(body.List, []*cfgNode{g.entry})
	// Falling off the end of the body is a return.
	for _, n := range last {
		n.succs = append(n.succs, g.exit)
	}
	if len(b.pendingGotos) > 0 {
		// A goto whose label never appeared (or appeared in a scope the
		// walk did not thread): give up on this function.
		g.unanalyzable = true
	}
	return g
}

func (g *cfg) newNode(stmt ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: stmt, index: len(g.nodes)}
	g.nodes = append(g.nodes, n)
	return n
}

// stmts wires a statement list after the given predecessor frontier and
// returns the new frontier (the nodes whose successors are whatever
// comes next). An empty frontier means control cannot reach this point.
func (b *cfgBuilder) stmts(list []ast.Stmt, preds []*cfgNode) []*cfgNode {
	cur := preds
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// link points every frontier node at next.
func link(preds []*cfgNode, next *cfgNode) {
	for _, p := range preds {
		p.succs = append(p.succs, next)
	}
}

// stmt wires one statement and returns the frontier after it.
func (b *cfgBuilder) stmt(s ast.Stmt, preds []*cfgNode) []*cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, preds)

	case *ast.IfStmt:
		cond := b.g.newNode(s)
		link(preds, cond)
		if s.Init != nil {
			// Init runs before the condition; the node already covers
			// both (statement granularity).
		}
		thenOut := b.stmts(s.Body.List, []*cfgNode{cond})
		var elseOut []*cfgNode
		if s.Else != nil {
			elseOut = b.stmt(s.Else, []*cfgNode{cond})
		} else {
			elseOut = []*cfgNode{cond}
		}
		return append(thenOut, elseOut...)

	case *ast.ForStmt:
		head := b.g.newNode(s) // init+cond evaluation point
		link(preds, head)
		after := b.g.newNode(nil) // join point past the loop
		b.breakTargets = append(b.breakTargets, after)
		b.continueTargets = append(b.continueTargets, head)
		bodyOut := b.stmts(s.Body.List, []*cfgNode{head})
		link(bodyOut, head) // post statement folded into head
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		if s.Cond != nil {
			head.succs = append(head.succs, after) // cond may be false
		}
		// An infinite loop (no cond) exits only via break; if nothing
		// breaks, `after` stays unreachable, which is correct.
		return []*cfgNode{after}

	case *ast.RangeStmt:
		head := b.g.newNode(s)
		link(preds, head)
		after := b.g.newNode(nil)
		head.succs = append(head.succs, after) // empty collection
		b.breakTargets = append(b.breakTargets, after)
		b.continueTargets = append(b.continueTargets, head)
		bodyOut := b.stmts(s.Body.List, []*cfgNode{head})
		link(bodyOut, head)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		return []*cfgNode{after}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		head := b.g.newNode(s)
		link(preds, head)
		after := b.g.newNode(nil)
		b.breakTargets = append(b.breakTargets, after)
		var bodyList []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			bodyList = sw.Body.List
		} else {
			bodyList = s.(*ast.TypeSwitchStmt).Body.List
		}
		hasDefault := false
		// Wire each case clause; fallthrough chains into the next.
		var clauseEntries []*cfgNode
		var clauseOuts [][]*cfgNode
		for _, cs := range bodyList {
			cc := cs.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			entry := b.g.newNode(cc)
			head.succs = append(head.succs, entry)
			out := b.stmts(cc.Body, []*cfgNode{entry})
			clauseEntries = append(clauseEntries, entry)
			clauseOuts = append(clauseOuts, out)
		}
		_ = clauseEntries
		for i, out := range clauseOuts {
			// A clause ending in fallthrough continues into the next
			// clause's body; otherwise it exits the switch.
			ft := false
			cc := bodyList[i].(*ast.CaseClause)
			if n := len(cc.Body); n > 0 {
				if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
					ft = true
				}
			}
			if ft && i+1 < len(clauseOuts) {
				next := bodyList[i+1].(*ast.CaseClause)
				_ = next
				link(out, clauseEntries[i+1])
			} else {
				link(out, after)
			}
		}
		if !hasDefault {
			head.succs = append(head.succs, after) // no case matched
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		return []*cfgNode{after}

	case *ast.SelectStmt:
		head := b.g.newNode(s)
		link(preds, head)
		after := b.g.newNode(nil)
		b.breakTargets = append(b.breakTargets, after)
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			entry := b.g.newNode(cc)
			head.succs = append(head.succs, entry)
			out := b.stmts(cc.Body, []*cfgNode{entry})
			link(out, after)
		}
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no way past it.
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		if len(s.Body.List) == 0 {
			return nil
		}
		return []*cfgNode{after}

	case *ast.ReturnStmt:
		n := b.g.newNode(s)
		link(preds, n)
		n.succs = append(n.succs, b.g.exit)
		return nil

	case *ast.BranchStmt:
		n := b.g.newNode(s)
		link(preds, n)
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				if t, ok := b.labeledBreak[s.Label.Name]; ok {
					n.succs = append(n.succs, t)
				} else {
					b.g.unanalyzable = true
				}
			} else if len(b.breakTargets) > 0 {
				n.succs = append(n.succs, b.breakTargets[len(b.breakTargets)-1])
			} else {
				b.g.unanalyzable = true
			}
		case "continue":
			if s.Label != nil {
				if t, ok := b.labeledContinue[s.Label.Name]; ok {
					n.succs = append(n.succs, t)
				} else {
					b.g.unanalyzable = true
				}
			} else if len(b.continueTargets) > 0 {
				n.succs = append(n.succs, b.continueTargets[len(b.continueTargets)-1])
			} else {
				b.g.unanalyzable = true
			}
		case "goto":
			if t, ok := b.labels[s.Label.Name]; ok {
				n.succs = append(n.succs, t)
			} else {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], n)
			}
		case "fallthrough":
			// Handled by the switch wiring; as a standalone frontier
			// element it simply flows on.
			return []*cfgNode{n}
		}
		return nil

	case *ast.LabeledStmt:
		// The label applies to the statement it prefixes; for loops it
		// also names break/continue targets. Model the label itself as
		// a pass-through node so gotos have somewhere to land.
		lab := b.g.newNode(s)
		link(preds, lab)
		b.labels[s.Label.Name] = lab
		for _, pending := range b.pendingGotos[s.Label.Name] {
			pending.succs = append(pending.succs, lab)
		}
		delete(b.pendingGotos, s.Label.Name)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Pre-register the labeled targets: the loop wiring will
			// push its own unlabeled targets; the labeled forms alias
			// them. Build the loop, then harvest its targets from the
			// stacks via a small shim: easiest is to wire the loop and
			// look at the nodes it created.
			out := b.labeledLoop(s.Label.Name, inner, []*cfgNode{lab})
			return out
		default:
			return b.stmt(s.Stmt, []*cfgNode{lab})
		}

	case *ast.ExprStmt:
		if isTerminalCall(s.X) {
			n := b.g.newNode(s)
			link(preds, n)
			return nil // panic/os.Exit: path ends here
		}
		n := b.g.newNode(s)
		link(preds, n)
		return []*cfgNode{n}

	case nil:
		return preds

	default:
		// Assignments, declarations, go/defer/send/incdec, empty
		// statements: straight-line.
		n := b.g.newNode(s)
		link(preds, n)
		return []*cfgNode{n}
	}
}

// labeledLoop wires a labeled for/range loop, registering the label's
// break/continue targets for "break L" / "continue L".
func (b *cfgBuilder) labeledLoop(label string, s ast.Stmt, preds []*cfgNode) []*cfgNode {
	head := b.g.newNode(s)
	link(preds, head)
	after := b.g.newNode(nil)
	b.labeledBreak[label] = after
	b.labeledContinue[label] = head
	b.breakTargets = append(b.breakTargets, after)
	b.continueTargets = append(b.continueTargets, head)
	var body *ast.BlockStmt
	hasCond := true
	switch s := s.(type) {
	case *ast.ForStmt:
		body = s.Body
		hasCond = s.Cond != nil
	case *ast.RangeStmt:
		body = s.Body
	}
	bodyOut := b.stmts(body.List, []*cfgNode{head})
	link(bodyOut, head)
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	delete(b.labeledBreak, label)
	delete(b.labeledContinue, label)
	if hasCond {
		head.succs = append(head.succs, after)
	}
	return []*cfgNode{after}
}

// isTerminalCall reports whether expr is a call that never returns:
// panic(...) or os.Exit(...) / log.Fatal*(...). Deferred functions
// still run after panic, which the lock analysis accounts for by
// treating these as non-exit path ends.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if x.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if x.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return true
			}
		}
	}
	return false
}

// funcBodies yields every function body in the file with its
// enclosing declaration context: top-level FuncDecls and all FuncLits.
// Each FuncLit is its own analysis unit (its locks and paths are
// independent of the enclosing function's).
type funcUnit struct {
	// decl is non-nil for a declared function, nil for a literal.
	decl *ast.FuncDecl
	// lit is non-nil for a function literal.
	lit *ast.FuncLit
	// name labels diagnostics: the declared name, or "func literal".
	name string
	body *ast.BlockStmt
}

// collectFuncUnits gathers the file's analysis units in source order.
func collectFuncUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, funcUnit{decl: fd, name: fd.Name.Name, body: fd.Body})
		// Nested literals, in source order.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				units = append(units, funcUnit{lit: lit, name: fd.Name.Name + " func literal", body: lit.Body})
			}
			return true
		})
	}
	return units
}

// Corpus for the goroutineleak check: a goroutine launched from a
// ctx-holding function must observe ctx.Done() (directly, via a ctx
// parameter of its own, or through a same-package callee) or be joined
// by a sync.WaitGroup the launcher waits on. Functions without a ctx
// in scope are out of scope — goroutine lifetime there belongs to the
// owner, not the cancellation graph.
package goroutineleak

import (
	"context"
	"sync"
)

func work() {}

// leaks: the goroutine neither watches ctx nor is joined.
func leaks(ctx context.Context) {
	go func() { // want "goroutine launched from ctx-holding leaks neither observes ctx.Done"
		for {
			work()
		}
	}()
	<-ctx.Done()
}

// watchesDone is clean: the goroutine selects on ctx.Done().
func watchesDone(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				work()
			}
		}
	}()
}

// joined is clean: the launcher waits on the WaitGroup the goroutine
// signals.
func joined(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// doneWithoutWait leaks: the goroutine calls wg.Done, but nothing in
// this launcher ever waits on wg, so the join is imaginary.
func doneWithoutWait(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine launched from ctx-holding doneWithoutWait neither observes ctx.Done"
		defer wg.Done()
		work()
	}()
}

// passesCtx is clean: handing the callee a context gives it the means
// to stop.
func passesCtx(ctx context.Context) {
	go runner(ctx)
}

func runner(ctx context.Context) {
	<-ctx.Done()
}

type worker struct {
	ctx  context.Context
	jobs chan int
}

// launchMethod is clean through the summary pass: loop observes
// w.ctx.Done() even though the go statement itself shows no ctx.
func (w *worker) launchMethod(ctx context.Context) {
	go w.loop()
}

func (w *worker) loop() {
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-w.jobs:
			work()
		}
	}
}

// launchOpaque leaks: spin never observes any ctx.
func (w *worker) launchOpaque(ctx context.Context) {
	go w.spin() // want "goroutine launched from ctx-holding launchOpaque neither observes ctx.Done"
}

func (w *worker) spin() {
	for {
		work()
	}
}

// insideClosure: the ctx-holding scope extends into nested closures —
// a leak three literals deep is still a leak.
func insideClosure(ctx context.Context) func() {
	return func() {
		go work() // want "goroutine launched from ctx-holding insideClosure neither observes ctx.Done"
	}
}

// noCtxNoRules: without a context in scope, goroutine lifetime is the
// owner's business — no findings here.
func noCtxNoRules() {
	go work()
	go func() {
		for {
			work()
		}
	}()
}

// suppressed documents a sanctioned detachment (a server goroutine
// bounded by Close elsewhere).
func suppressed(ctx context.Context) {
	//fgbs:allow goroutineleak corpus: goroutine bounded by Close, not ctx
	go work()
}

// indirectDone is clean: the goroutine body calls a same-package
// function that observes Done.
func indirectDone(ctx context.Context) {
	go func() {
		runner(ctx)
	}()
}

//go:build race

package corpus

// raceDetectorEnabled reports whether this test binary was built with
// -race. See skipIfRace in corpus_test.go.
const raceDetectorEnabled = true

package sim

import (
	"fmt"

	"fgbs/internal/arch"
	"fgbs/internal/cache"
	"fgbs/internal/compile"
	"fgbs/internal/ir"
)

// prefetchableStrideBytes bounds the constant stride (absolute value)
// that hardware prefetchers are assumed to track.
const prefetchableStrideBytes = 128

// prepared is a codelet compiled against one machine and one dataset,
// ready to be walked invocation by invocation.
type prepared struct {
	prog    *ir.Program
	codelet *ir.Codelet
	machine *arch.Machine
	lowered *compile.Codelet
	ds      *Dataset

	// cells maps every variable (params + loop vars) to a storage
	// cell read by compiled closures.
	cells map[string]*int64
	root  []node

	// latPenalty[lvl] is the extra load-to-use latency of a hit at
	// cache level lvl relative to L1; the last entry is for DRAM.
	latPenalty []float64
}

// execState accumulates one invocation's costs.
type execState struct {
	h *cache.Hierarchy

	computeCycles float64
	exposedLat    float64
	instr         float64

	ops       ir.OpCount
	vecFPOps  float64
	memLoads  float64
	memStores float64
}

// node is one compiled loop.
type node interface {
	run(e *execState)
}

// outerNode drives a non-innermost loop.
type outerNode struct {
	cell   *int64
	lo, hi func() int64
	body   []node
}

func (n *outerNode) run(e *execState) {
	lo, hi := n.lo(), n.hi()
	for i := lo; i < hi; i++ {
		*n.cell = i
		for _, b := range n.body {
			b.run(e)
		}
	}
}

// refPlan is one memory reference of an innermost loop body.
type refPlan struct {
	write bool
	// exposure scales miss penalties by how much of them this machine
	// exposes for this access pattern.
	exposure float64

	// Affine path: address = start (computed per loop entry with the
	// inner variable at its lower bound) advanced by strideBytes per
	// iteration.
	affine      bool
	startFn     func() int64 // byte address at inner == lower
	strideBytes int64

	// Indirect path: full byte address from loaded index data.
	addrFn func() int64
}

// innerNode drives an innermost loop: per-iteration compute costs are
// constants from the lowering; memory references stream through the
// cache hierarchy.
type innerNode struct {
	cell    *int64
	lo, hi  func() int64
	refs    []refPlan
	addrBuf []int64

	perIterCycles float64
	perIterInstr  float64
	perIterOps    ir.OpCount
	perIterVecFP  float64
	lat           []float64
}

func (n *innerNode) run(e *execState) {
	lo, hi := n.lo(), n.hi()
	trips := hi - lo
	if trips <= 0 {
		return
	}
	ft := float64(trips)
	e.computeCycles += ft * n.perIterCycles
	e.instr += ft * n.perIterInstr
	e.ops = e.ops.Plus(scaleOps(n.perIterOps, trips))
	e.vecFPOps += ft * n.perIterVecFP
	e.memLoads += ft * float64(countRefs(n.refs, false))
	e.memStores += ft * float64(countRefs(n.refs, true))

	*n.cell = lo
	for k := range n.refs {
		if n.refs[k].affine {
			n.addrBuf[k] = n.refs[k].startFn()
		}
	}
	for i := lo; i < hi; i++ {
		*n.cell = i
		for k := range n.refs {
			rp := &n.refs[k]
			var a int64
			if rp.affine {
				a = n.addrBuf[k]
				n.addrBuf[k] += rp.strideBytes
			} else {
				a = rp.addrFn()
			}
			lvl := e.h.Access(a, rp.write)
			if lvl > 0 {
				e.exposedLat += n.lat[lvl] * rp.exposure
			}
		}
	}
}

func countRefs(refs []refPlan, write bool) int {
	c := 0
	for _, r := range refs {
		if r.write == write {
			c++
		}
	}
	return c
}

func scaleOps(o ir.OpCount, k int64) ir.OpCount {
	return ir.OpCount{
		FAdd: o.FAdd * k, FMul: o.FMul * k, FDiv: o.FDiv * k,
		FSqrt: o.FSqrt * k, FSpecial: o.FSpecial * k,
		IntOps: o.IntOps * k, Loads: o.Loads * k, Stores: o.Stores * k,
		F32Ops: o.F32Ops * k,
	}
}

// prepare lowers codelet c for machine m (in the given compilation
// context) and compiles its loop nest into runnable nodes against
// dataset ds.
func prepare(p *ir.Program, c *ir.Codelet, m *arch.Machine, ds *Dataset, inApp bool) (*prepared, error) {
	pr := &prepared{
		prog:    p,
		codelet: c,
		machine: m,
		lowered: compile.Lower(p, c, m, inApp),
		ds:      ds,
		cells:   make(map[string]*int64),
	}
	for name, v := range p.Params {
		cell := new(int64)
		*cell = v
		pr.cells[name] = cell
	}

	// Latency penalty table, indexed by hit level (L1 = 0).
	l1 := m.Caches[0].LatencyCycles
	pr.latPenalty = make([]float64, len(m.Caches)+1)
	for i, cl := range m.Caches {
		pr.latPenalty[i] = cl.LatencyCycles - l1
	}
	pr.latPenalty[len(m.Caches)] = m.MemLatencyCycles - l1

	// Map innermost ir loops to their lowering.
	loweredByLoop := make(map[*ir.Loop]*compile.Loop, len(pr.lowered.Loops))
	for _, ll := range pr.lowered.Loops {
		loweredByLoop[ll.Context.Loop] = ll
	}

	root, err := pr.buildLoop(c.Loop, loweredByLoop)
	if err != nil {
		return nil, fmt.Errorf("sim: codelet %q on %s: %w", c.Name, m.Name, err)
	}
	pr.root = []node{root}
	return pr, nil
}

// cellFor returns (creating on demand) the storage cell for a loop
// variable.
func (pr *prepared) cellFor(name string) *int64 {
	if c, ok := pr.cells[name]; ok {
		return c
	}
	c := new(int64)
	pr.cells[name] = c
	return c
}

// affineFn compiles an affine form to a closure over cells.
func (pr *prepared) affineFn(a ir.Affine) func() int64 {
	k := a.K
	type term struct {
		cell  *int64
		coeff int64
	}
	var terms []term
	for _, t := range a.Terms {
		terms = append(terms, term{cell: pr.cellFor(t.Var), coeff: t.Coeff})
	}
	switch len(terms) {
	case 0:
		return func() int64 { return k }
	case 1:
		t0 := terms[0]
		return func() int64 { return k + t0.coeff*(*t0.cell) }
	default:
		return func() int64 {
			v := k
			for _, t := range terms {
				v += t.coeff * (*t.cell)
			}
			return v
		}
	}
}

func (pr *prepared) buildLoop(l *ir.Loop, lowered map[*ir.Loop]*compile.Loop) (node, error) {
	cell := pr.cellFor(l.Var)
	lo := pr.affineFn(l.Lower)
	hi := pr.affineFn(l.Upper)

	if ll, isInner := lowered[l]; isInner {
		in := &innerNode{
			cell: cell, lo: lo, hi: hi,
			perIterCycles: ll.CyclesPerIter,
			perIterInstr:  ll.InstrPerIter,
			lat:           pr.latPenalty,
		}
		for _, st := range ll.Stmts {
			in.perIterOps = in.perIterOps.Plus(st.Ops)
			if st.Vectorized {
				in.perIterVecFP += float64(st.Ops.FPOps())
			}
			for _, mr := range st.Mem {
				rp, err := pr.buildRef(mr, l.Var)
				if err != nil {
					return nil, err
				}
				in.refs = append(in.refs, rp)
			}
		}
		in.addrBuf = make([]int64, len(in.refs))
		return in, nil
	}

	out := &outerNode{cell: cell, lo: lo, hi: hi}
	for _, s := range l.Body {
		nl, ok := s.(*ir.Loop)
		if !ok {
			// Straight-line statements in non-innermost loops are rare
			// in loop-nest codelets; treat them as part of an implicit
			// single-iteration inner loop is not supported.
			return nil, fmt.Errorf("statement outside innermost loop in %q", pr.codelet.Name)
		}
		child, err := pr.buildLoop(nl, lowered)
		if err != nil {
			return nil, err
		}
		out.body = append(out.body, child)
	}
	return out, nil
}

// buildRef compiles one memory reference.
func (pr *prepared) buildRef(mr compile.MemRef, inner string) (refPlan, error) {
	arr := pr.prog.Array(mr.Ref.Array)
	if arr == nil {
		return refPlan{}, fmt.Errorf("reference to unknown array %q", mr.Ref.Array)
	}
	base := pr.ds.Base(arr.Name)
	elem := arr.DT.Size()

	rp := refPlan{write: mr.Write}

	// Miss-latency exposure: out-of-order cores hide Overlap of it;
	// prefetchers hide PrefetchEff of the rest on sequential streams.
	m := pr.machine
	exposure := 1 - m.Overlap
	sequential := mr.Stride.Kind == ir.StrideAffine &&
		absI64(mr.Stride.Bytes) <= prefetchableStrideBytes ||
		mr.Stride.Kind == ir.StrideConst
	if sequential {
		exposure *= 1 - m.PrefetchEff
	}
	rp.exposure = exposure

	if lin, ok := pr.prog.LinearIndex(mr.Ref); ok {
		rp.affine = true
		linFn := pr.affineFn(lin)
		rp.startFn = func() int64 { return base + linFn()*elem }
		rp.strideBytes = mr.Stride.Elems * elem
		return rp, nil
	}

	// Indirect reference: compile the full index computation, reading
	// integer array data as needed.
	idxFns := make([]func() int64, len(mr.Ref.Index))
	for d, ix := range mr.Ref.Index {
		fn, err := pr.intExprFn(ix)
		if err != nil {
			return refPlan{}, err
		}
		idxFns[d] = fn
	}
	mults := dimMults(arr, pr.prog.Params)
	rp.addrFn = func() int64 {
		lin := int64(0)
		for d, fn := range idxFns {
			lin += fn() * mults[d]
		}
		return base + lin*elem
	}
	return rp, nil
}

// dimMults returns the row-major multiplier of each dimension.
func dimMults(a *ir.Array, params map[string]int64) []int64 {
	mults := make([]int64, len(a.Dims))
	m := int64(1)
	for d := len(a.Dims) - 1; d >= 0; d-- {
		mults[d] = m
		m *= a.Dims[d].Eval(params)
	}
	return mults
}

// intExprFn compiles an integer expression (used inside indirect
// indices) to a closure. Loads read the dataset's integer contents
// directly; their cache traffic is accounted by their own refPlan
// built from the lowering's memory list.
func (pr *prepared) intExprFn(e ir.Expr) (func() int64, error) {
	switch n := e.(type) {
	case *ir.Const:
		if n.DT != ir.I64 {
			return nil, fmt.Errorf("float constant in index expression")
		}
		v := n.I
		return func() int64 { return v }, nil
	case *ir.Var:
		cell := pr.cellFor(n.Name)
		return func() int64 { return *cell }, nil
	case *ir.Load:
		if n.Ref.DType() != ir.I64 {
			return nil, fmt.Errorf("non-integer load in index expression (array %q)", n.Ref.Array)
		}
		arr := pr.prog.Array(n.Ref.Array)
		data := pr.ds.Ints(n.Ref.Array)
		if data == nil {
			return nil, fmt.Errorf("integer array %q has no data", n.Ref.Array)
		}
		mults := dimMults(arr, pr.prog.Params)
		idxFns := make([]func() int64, len(n.Ref.Index))
		for d, ix := range n.Ref.Index {
			fn, err := pr.intExprFn(ix)
			if err != nil {
				return nil, err
			}
			idxFns[d] = fn
		}
		size := int64(len(data))
		return func() int64 {
			lin := int64(0)
			for d, fn := range idxFns {
				lin += fn() * mults[d]
			}
			if lin < 0 || lin >= size {
				return 0 // out-of-range indirection reads as zero
			}
			return data[lin]
		}, nil
	case *ir.Bin:
		a, err := pr.intExprFn(n.A)
		if err != nil {
			return nil, err
		}
		b, err := pr.intExprFn(n.B)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case ir.OpAdd:
			return func() int64 { return a() + b() }, nil
		case ir.OpSub:
			return func() int64 { return a() - b() }, nil
		case ir.OpMul:
			return func() int64 { return a() * b() }, nil
		case ir.OpDiv:
			return func() int64 {
				d := b()
				if d == 0 {
					return 0
				}
				return a() / d
			}, nil
		case ir.OpMod:
			return func() int64 {
				d := b()
				if d == 0 {
					return 0
				}
				return a() % d
			}, nil
		case ir.OpAnd:
			return func() int64 { return a() & b() }, nil
		case ir.OpShr:
			return func() int64 { return a() >> uint(b()&63) }, nil
		case ir.OpMin:
			return func() int64 { return minI64(a(), b()) }, nil
		case ir.OpMax:
			return func() int64 { return maxI64(a(), b()) }, nil
		default:
			return nil, fmt.Errorf("unsupported integer operator %v in index", n.Op)
		}
	case *ir.Un:
		a, err := pr.intExprFn(n.A)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case ir.OpNeg:
			return func() int64 { return -a() }, nil
		case ir.OpAbs:
			return func() int64 { return absI64(a()) }, nil
		default:
			return nil, fmt.Errorf("unsupported unary operator %v in index", n.Op)
		}
	default:
		return nil, fmt.Errorf("unsupported expression %T in index", e)
	}
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package server

import (
	"container/list"
	"fmt"
	"sync"
)

// resultCache is the LRU cache for finished query results. Keys
// identify a query exactly — suite, feature mask, cluster count,
// target and seed — so a hit can replay the stored response bytes
// verbatim. Values are immutable encoded JSON, which makes sharing
// them across goroutines trivially safe.
//
// (internal/cache simulates hardware data caches; this one caches
// answers. They share nothing but the name.)
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used; guarded by mu
	items map[string]*list.Element // guarded by mu

	hits   int64 // guarded by mu
	misses int64 // guarded by mu
}

type cacheEntry struct {
	key string
	val []byte
}

// newResultCache builds a cache holding at most capacity entries.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// resultKey builds the canonical cache key. target is "*" for queries
// spanning all targets (select, evaluate-all).
func resultKey(kind, suite, mask string, k int, target string, seed uint64) string {
	return fmt.Sprintf("%s|%s|%s|%d|%s|%d", kind, suite, mask, k, target, seed)
}

// Get returns the cached value and marks it most recently used.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *resultCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns hit/miss counters and the current size.
func (c *resultCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

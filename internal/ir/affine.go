package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Term is one linear term of an Affine expression: Coeff * Var, where
// Var names either a loop variable or a program parameter.
type Term struct {
	Var   string
	Coeff int64
}

// Affine is an integer affine form K + sum(Coeff_i * Var_i). Loop
// bounds are Affine in enclosing loop variables and program parameters;
// array index expressions are analyzed into Affine forms to derive
// strides (Table 3's "Stride" column).
type Affine struct {
	K     int64
	Terms []Term
}

// AC returns the constant affine form k.
func AC(k int64) Affine { return Affine{K: k} }

// AV returns the affine form 1*name.
func AV(name string) Affine { return Affine{Terms: []Term{{Var: name, Coeff: 1}}} }

// AT returns the affine form coeff*name.
func AT(name string, coeff int64) Affine {
	if coeff == 0 {
		return Affine{}
	}
	return Affine{Terms: []Term{{Var: name, Coeff: coeff}}}
}

// normalize merges duplicate variables, drops zero coefficients and
// orders terms by variable name so that equal forms compare equal.
func (a Affine) normalize() Affine {
	if len(a.Terms) == 0 {
		return a
	}
	m := make(map[string]int64, len(a.Terms))
	for _, t := range a.Terms {
		m[t.Var] += t.Coeff
	}
	out := Affine{K: a.K}
	names := make([]string, 0, len(m))
	for v, c := range m {
		if c != 0 {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	for _, v := range names {
		out.Terms = append(out.Terms, Term{Var: v, Coeff: m[v]})
	}
	return out
}

// Plus returns a + b.
func (a Affine) Plus(b Affine) Affine {
	out := Affine{K: a.K + b.K}
	out.Terms = append(out.Terms, a.Terms...)
	out.Terms = append(out.Terms, b.Terms...)
	return out.normalize()
}

// PlusK returns a + k.
func (a Affine) PlusK(k int64) Affine { return a.Plus(AC(k)) }

// Minus returns a - b.
func (a Affine) Minus(b Affine) Affine { return a.Plus(b.ScaleK(-1)) }

// ScaleK returns a * k.
func (a Affine) ScaleK(k int64) Affine {
	out := Affine{K: a.K * k}
	for _, t := range a.Terms {
		out.Terms = append(out.Terms, Term{Var: t.Var, Coeff: t.Coeff * k})
	}
	return out.normalize()
}

// Coeff returns the coefficient of variable v (0 if absent).
func (a Affine) Coeff(v string) int64 {
	for _, t := range a.Terms {
		if t.Var == v {
			return t.Coeff
		}
	}
	return 0
}

// IsConst reports whether a has no variable terms.
func (a Affine) IsConst() bool { return len(a.normalize().Terms) == 0 }

// Eval evaluates a under env. It panics if a variable is unbound: an
// unbound variable in a loop bound is a malformed codelet, which
// Program.Validate rejects before anything is evaluated.
func (a Affine) Eval(env map[string]int64) int64 {
	v := a.K
	for _, t := range a.Terms {
		val, ok := env[t.Var]
		if !ok {
			panic(fmt.Sprintf("ir: unbound variable %q in affine form", t.Var))
		}
		v += t.Coeff * val
	}
	return v
}

// Vars returns the variable names appearing with nonzero coefficient.
func (a Affine) Vars() []string {
	n := a.normalize()
	vars := make([]string, len(n.Terms))
	for i, t := range n.Terms {
		vars[i] = t.Var
	}
	return vars
}

// Equal reports whether a and b denote the same affine form.
func (a Affine) Equal(b Affine) bool {
	na, nb := a.normalize(), b.normalize()
	if na.K != nb.K || len(na.Terms) != len(nb.Terms) {
		return false
	}
	for i := range na.Terms {
		if na.Terms[i] != nb.Terms[i] {
			return false
		}
	}
	return true
}

// String renders the affine form for diagnostics, e.g. "2*i + n - 1".
func (a Affine) String() string {
	n := a.normalize()
	var parts []string
	for _, t := range n.Terms {
		switch t.Coeff {
		case 1:
			parts = append(parts, t.Var)
		case -1:
			parts = append(parts, "-"+t.Var)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", t.Coeff, t.Var))
		}
	}
	if n.K != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", n.K))
	}
	return strings.Join(parts, " + ")
}

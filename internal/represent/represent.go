// Package represent implements §3.4's representative selection loop:
//
//  1. Pick, in each cluster, the codelet closest to the centroid.
//  2. If the candidate is ill-behaved (its extracted microbenchmark
//     does not reproduce the in-application time on the reference
//     architecture within 10%), mark it ineligible and reselect.
//  3. If every member of a cluster is ineligible, destroy the cluster
//     and move each member to the cluster containing its closest
//     well-behaved neighbor.
//
// The outcome is a final clustering in which every cluster has a
// well-behaved representative, possibly with fewer clusters than the
// elbow method requested.
package represent

import (
	"fmt"

	"fgbs/internal/cluster"
)

// Selection is the outcome of the representative-selection process.
type Selection struct {
	// Labels is the final cluster assignment per codelet, with
	// consecutive labels 0..K-1 after dissolutions.
	Labels []int
	// Reps maps each final cluster label to the index of its
	// (well-behaved) representative codelet.
	Reps []int
	// K is the final cluster count.
	K int
	// Destroyed counts clusters dissolved because all their members
	// were ill-behaved.
	Destroyed int
	// Moved lists the codelets reassigned by dissolutions.
	Moved []int
}

// Select runs the selection process. points are the (normalized,
// masked) feature vectors used for clustering; labels the initial
// cut; illBehaved the per-codelet screening result on the reference
// architecture.
func Select(points [][]float64, labels []int, illBehaved []bool) (*Selection, error) {
	n := len(points)
	if len(labels) != n || len(illBehaved) != n {
		return nil, fmt.Errorf("represent: length mismatch (points %d, labels %d, illBehaved %d)",
			n, len(labels), len(illBehaved))
	}
	if n == 0 {
		return nil, fmt.Errorf("represent: no codelets")
	}
	k := 0
	for _, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("represent: negative label")
		}
		if l+1 > k {
			k = l + 1
		}
	}

	// A cluster survives if it has at least one well-behaved member.
	// The iterative reselection of §3.4 converges to exactly that
	// member of the surviving cluster closest to the centroid, since
	// ill-behavedness is a property of the codelet, not of the
	// selection attempt.
	eligible := func(i int) bool { return !illBehaved[i] }
	reps := cluster.Representatives(points, labels, eligible)

	surviving := make([]bool, k)
	for c, r := range reps {
		surviving[c] = r >= 0
	}
	anySurvivor := false
	for _, s := range surviving {
		anySurvivor = anySurvivor || s
	}
	if !anySurvivor {
		return nil, fmt.Errorf("represent: every cluster is ill-behaved; nothing can be extracted")
	}

	// Move members of destroyed clusters to the cluster of their
	// closest neighbor in a surviving cluster.
	final := append([]int(nil), labels...)
	var moved []int
	destroyed := 0
	for c := 0; c < k; c++ {
		if surviving[c] {
			continue
		}
		destroyed++
		for i := range points {
			if labels[i] != c {
				continue
			}
			nn := cluster.NearestNeighbor(points, i, func(j int) bool {
				return surviving[labels[j]]
			})
			if nn < 0 {
				return nil, fmt.Errorf("represent: no surviving neighbor for codelet %d", i)
			}
			final[i] = labels[nn]
			moved = append(moved, i)
		}
	}

	// Relabel surviving clusters consecutively and carry reps over.
	remap := make(map[int]int)
	for c := 0; c < k; c++ {
		if surviving[c] {
			remap[c] = len(remap)
		}
	}
	sel := &Selection{
		Labels:    make([]int, n),
		Reps:      make([]int, len(remap)),
		K:         len(remap),
		Destroyed: destroyed,
		Moved:     moved,
	}
	for i, l := range final {
		sel.Labels[i] = remap[l]
	}
	for c, r := range reps {
		if surviving[c] {
			sel.Reps[remap[c]] = r
		}
	}
	return sel, nil
}

//go:build race

package fgbs

// raceDetectorEnabled reports whether this test binary was built with
// -race. See skipIfRace in fixtures_test.go.
const raceDetectorEnabled = true

// Package pipeline orchestrates the five steps of the benchmark
// reduction method (Figure 1), one file per step:
//
//	Step A  codelet detection        — detect.go: the suites provide
//	                                   programs already decomposed into
//	                                   codelets; Detect validates and
//	                                   flattens them.
//	Step B  profiling                — profile.go: Profile measures
//	                                   every codelet in-application on
//	                                   the reference machine, runs the
//	                                   MAQAO-style static analysis, and
//	                                   assembles the 76-entry feature
//	                                   vectors. It also collects the
//	                                   standalone and ground-truth
//	                                   target measurements the
//	                                   evaluation needs.
//	Step C  clustering               — cluster.go: Subset normalizes
//	                                   the masked features (§3.3) and
//	                                   applies Ward hierarchical
//	                                   clustering with a manual K or the
//	                                   elbow rule.
//	Step D  representative selection — represent.go: extraction
//	                                   screening (10% rule) plus the
//	                                   §3.4 reselection loop via
//	                                   internal/represent.
//	Step E  prediction               — predict.go: Evaluate builds the
//	                                   matrix model and compares
//	                                   predictions against the measured
//	                                   ground truth, computing error
//	                                   statistics and the
//	                                   benchmarking-reduction breakdown.
//
// The monolithic entry points (NewProfile, Profile.Subset,
// Profile.Evaluate) run the steps directly and remain the reference
// semantics. stages.go layers the content-addressed internal/stage
// engine on top of the same step functions: Engine.Profile resolves
// Detect→Profile through a stage.Store, and the returned Staged view
// resolves Normalize→Cluster→Represent→Predict per (mask, K, target) —
// byte-identical outputs, but a parameter change recomputes only its
// downstream stages. experiments.go and parallel.go hold the
// experiment drivers, profileio.go the profile serialization.
package pipeline

import (
	"fgbs/internal/arch"
	"fgbs/internal/fault"
)

// MinMeasurableCycles is the profiling floor: codelets below it are
// discarded as unmeasurable, the scaled analogue of the paper's
// "execution time under one million cycles" rule (§3.2).
const MinMeasurableCycles = 25000

// Options configures Profile.
type Options struct {
	// Reference defaults to arch.Reference().
	Reference *arch.Machine
	// Targets defaults to arch.Targets().
	Targets []*arch.Machine
	// Seed drives dataset construction and measurement noise.
	Seed uint64
	// Workers bounds concurrent measurements (0 = GOMAXPROCS).
	Workers int
	// Measurer replaces the raw simulator on the measurement path —
	// typically a measure.Robust stacked over a fault.Injector. nil
	// keeps the direct simulator call, byte-identical to earlier
	// releases. With a non-nil Measurer, measurement failures no longer
	// abort the profile: they escalate into the §3.4 screening
	// machinery (see Profile.RefFailed / Profile.TargetFailed).
	Measurer fault.Measurer
}

// Corpus for the determinism bench-timing exemption. The harness loads
// this package under the import path corpus/internal/bench, where
// time.Now is sanctioned — elapsed wall time is the benchmark runner's
// product — while pacing and math/rand remain findings even here: the
// workloads being timed must stay identical from run to run.
package benchpkg

import (
	"math/rand"
	"time"
)

func elapsed(op func()) time.Duration {
	start := time.Now()
	op()
	return time.Now().Sub(start)
}

func pace(d time.Duration) {
	time.Sleep(d) // want "paces on the wall clock"
}

func jitter() int64 {
	return rand.Int63() // want "bypasses internal/rng"
}

package pipeline

import (
	"sync"
	"testing"

	"fgbs/internal/extract"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/rng"
)

// tinySuite builds two small applications with heterogeneous codelets
// (stream, divide, recurrence, gather) so clustering has structure,
// without the cost of the full NR/NAS suites.
func tinySuite() []*ir.Program {
	mk := func(appName string) *ir.Program {
		p := ir.NewProgram(appName)
		p.SetParam("n", 200000) // streams past every modeled cache
		p.UncoveredFraction = 0.05
		p.AddArray("a", ir.F64, ir.AV("n"))
		p.AddArray("b", ir.F64, ir.AV("n"))
		p.AddArray("c", ir.F64, ir.AV("n"))
		idx := p.AddArray("idx", ir.I64, ir.AV("n"))
		idx.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("n")}
		p.AddScalar("s", ir.F64)

		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_copy", Invocations: 50,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_div", Invocations: 30,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")),
					RHS: ir.Div(p.LoadE("b", ir.V("i")), ir.Add(p.LoadE("c", ir.V("i")), ir.CF(1.5)))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_rec", Invocations: 20,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")),
					RHS: ir.Add(ir.Mul(p.LoadE("a", ir.Sub(ir.V("i"), ir.CI(1))), ir.CF(0.5)), p.LoadE("b", ir.V("i")))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_gather", Invocations: 25,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("s"),
					RHS: ir.Add(p.LoadE("s"), p.LoadE("c", p.LoadE("idx", ir.V("i"))))},
			}},
		})
		return p
	}
	first := mk("alpha")
	second := mk("beta")
	// One designed ill-behaved codelet in beta.
	second.Codelets[1].ContextSensitive = true
	return []*ir.Program{first, second}
}

var tinyMask = features.DefaultMask()

var (
	tinyOnce sync.Once
	tinyProf *Profile
	tinyErr  error
)

// tinyProfile builds the shared fixture once per test binary:
// profiling is the expensive step and is deterministic.
func tinyProfile(t *testing.T) *Profile {
	t.Helper()
	tinyOnce.Do(func() {
		tinyProf, tinyErr = NewProfile(tinySuite(), Options{Seed: 1})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyProf
}

func TestDetectRejectsBadPrograms(t *testing.T) {
	p := ir.NewProgram("empty")
	if _, _, err := Detect([]*ir.Program{p}); err == nil {
		t.Error("program without codelets accepted")
	}
}

func TestProfileShape(t *testing.T) {
	prof := tinyProfile(t)
	if prof.N() != 8 {
		t.Fatalf("N = %d, want 8", prof.N())
	}
	if len(prof.Targets) != 3 {
		t.Fatalf("targets = %d", len(prof.Targets))
	}
	for i := 0; i < prof.N(); i++ {
		if prof.RefInApp[i] <= 0 || prof.RefStandalone[i] <= 0 {
			t.Errorf("codelet %d: non-positive reference times", i)
		}
		if len(prof.Features[i]) != features.NumFeatures {
			t.Errorf("codelet %d: %d features", i, len(prof.Features[i]))
		}
		for tt := range prof.Targets {
			if prof.TargetInApp[tt][i] <= 0 || prof.TargetStandalone[tt][i] <= 0 {
				t.Errorf("codelet %d target %d: non-positive times", i, tt)
			}
		}
	}
	// Exactly the designed codelet is ill-behaved.
	ill := 0
	for i, b := range prof.IllBehaved {
		if b {
			ill++
			if prof.Codelets[i].Name != "beta_div" {
				t.Errorf("unexpected ill-behaved codelet %s", prof.Codelets[i].Name)
			}
		}
	}
	if ill != 1 {
		t.Errorf("ill-behaved count = %d, want 1", ill)
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := tinyProfile(t)
	b, err := NewProfile(tinySuite(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		if a.RefInApp[i] != b.RefInApp[i] {
			t.Fatalf("profiling not deterministic at codelet %d", i)
		}
	}
}

func TestSubsetAndEvaluate(t *testing.T) {
	prof := tinyProfile(t)
	sub, err := prof.Subset(tinyMask, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.K() < 3 || sub.K() > 4 {
		t.Fatalf("final K = %d", sub.K())
	}
	// The ill-behaved codelet must not be a representative.
	for _, r := range sub.Selection.Reps {
		if prof.IllBehaved[r] {
			t.Error("ill-behaved representative selected")
		}
	}
	for tt := range prof.Targets {
		ev, err := prof.Evaluate(sub, tt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev.Predicted) != prof.N() {
			t.Fatal("prediction length mismatch")
		}
		// Representatives predict themselves exactly... up to the
		// standalone-vs-in-app measurement gap; they must at least be
		// within the screening tolerance plus noise.
		for k, r := range sub.Selection.Reps {
			_ = k
			if ev.Errors[r] > 0.2 {
				t.Errorf("representative %s error %.2f on %s",
					prof.Codelets[r].Name, ev.Errors[r], ev.Target.Name)
			}
		}
		if ev.Reduction.Total <= 1 {
			t.Errorf("no benchmarking reduction on %s", ev.Target.Name)
		}
		if len(ev.Apps) != 2 {
			t.Errorf("apps = %d, want 2", len(ev.Apps))
		}
	}
}

func TestElbowWithinRange(t *testing.T) {
	prof := tinyProfile(t)
	k, err := prof.Elbow(tinyMask)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 || k > prof.N() {
		t.Errorf("elbow K = %d", k)
	}
}

func TestSweepKMonotonicErrorTrend(t *testing.T) {
	prof := tinyProfile(t)
	pts, err := prof.SweepK(tinyMask, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// Error at the max K should not exceed error at K=2 (per target).
	for tt := range prof.Targets {
		if pts[len(pts)-1].MedianError[tt] > pts[0].MedianError[tt]+0.02 {
			t.Errorf("target %d: error grew with K: %g -> %g",
				tt, pts[0].MedianError[tt], pts[len(pts)-1].MedianError[tt])
		}
	}
}

func TestSubProfileConsistent(t *testing.T) {
	prof := tinyProfile(t)
	idx := prof.AppIndices()["alpha"]
	sp := prof.SubProfile(idx)
	if sp.N() != 4 {
		t.Fatalf("sub-profile N = %d", sp.N())
	}
	for j, i := range idx {
		if sp.RefInApp[j] != prof.RefInApp[i] {
			t.Error("sub-profile reference times misaligned")
		}
		if sp.TargetInApp[0][j] != prof.TargetInApp[0][i] {
			t.Error("sub-profile target times misaligned")
		}
	}
}

func TestPerAppAndCrossApp(t *testing.T) {
	prof := tinyProfile(t)
	pp, err := prof.PerAppSubsetting(tinyMask, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pp.TotalReps < 2 {
		t.Errorf("per-app used %d reps", pp.TotalReps)
	}
	cp, err := prof.CrossAppPoint(tinyMask, pp.TotalReps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.MedianError) != len(prof.Targets) {
		t.Error("cross-app error vector malformed")
	}
}

func TestRandomClusterings(t *testing.T) {
	prof := tinyProfile(t)
	st, err := prof.RandomClusterings(tinyMask, 3, 25, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Best > st.Median || st.Median > st.Worst {
		t.Errorf("envelope disordered: %+v", st)
	}
	if st.Guided > st.Worst {
		t.Error("guided clustering worse than the worst random partition")
	}
}

func TestRandomPartitionSurjective(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(n)
		labels := randomPartition(r, n, k)
		seen := map[int]bool{}
		for _, l := range labels {
			if l < 0 || l >= k {
				t.Fatalf("label %d out of range", l)
			}
			seen[l] = true
		}
		if len(seen) != k {
			t.Fatalf("partition not surjective: %d/%d labels", len(seen), k)
		}
	}
}

func TestFeatureFitness(t *testing.T) {
	prof := tinyProfile(t)
	fitness, err := prof.FeatureFitness("Atom", "Sandy Bridge")
	if err != nil {
		t.Fatal(err)
	}
	if f := fitness(tinyMask); f <= 0 {
		t.Errorf("fitness = %g", f)
	}
	var empty features.Mask
	if f := fitness(empty); !isInf(f) {
		t.Errorf("empty mask fitness = %g, want +Inf", f)
	}
	if _, err := prof.FeatureFitness("NoSuchMachine"); err == nil {
		t.Error("unknown target accepted")
	}
}

func isInf(f float64) bool { return f > 1e300 }

func TestSubsetConfigVariants(t *testing.T) {
	prof := tinyProfile(t)
	base, err := prof.Subset(tinyMask, 4)
	if err != nil {
		t.Fatal(err)
	}
	// IgnoreScreening may select the ill-behaved codelet.
	noScreen, err := prof.SubsetWith(tinyMask, 4, SubsetConfig{IgnoreScreening: true})
	if err != nil {
		t.Fatal(err)
	}
	if noScreen.K() < base.K() {
		t.Error("screening off produced fewer clusters")
	}
	// RepFirst picks different representatives deterministically.
	first, err := prof.SubsetWith(tinyMask, 4, SubsetConfig{RepStrategy: RepFirst})
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range first.Selection.Reps {
		for i, l := range first.Selection.Labels {
			if l == c && !prof.IllBehaved[i] {
				if r != i {
					t.Errorf("cluster %d: RepFirst chose %d, want %d", c, r, i)
				}
				break
			}
		}
	}
	// NoNormalize still produces a valid subset.
	if _, err := prof.SubsetWith(tinyMask, 4, SubsetConfig{NoNormalize: true}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionWithRule(t *testing.T) {
	prof := tinyProfile(t)
	sub, err := prof.Subset(tinyMask, 3)
	if err != nil {
		t.Fatal(err)
	}
	loose := prof.ReductionWithRule(sub, 0, 0, 1)
	standard := prof.ReductionWithRule(sub, 0, extract.MinBenchSeconds, extract.MinInvocations)
	strict := prof.ReductionWithRule(sub, 0, 10*extract.MinBenchSeconds, 50)
	if !(loose.Total >= standard.Total && standard.Total >= strict.Total) {
		t.Errorf("reduction not monotone in rule strictness: %.1f / %.1f / %.1f",
			loose.Total, standard.Total, strict.Total)
	}
}

func TestEvaluateRejectsBadTarget(t *testing.T) {
	prof := tinyProfile(t)
	sub, err := prof.Subset(tinyMask, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Evaluate(sub, 99); err == nil {
		t.Error("out-of-range target accepted")
	}
}

package pipeline

import (
	"fmt"
	"math"

	"fgbs/internal/arch"
	"fgbs/internal/extract"
	"fgbs/internal/ir"
	"fgbs/internal/predict"
)

// Step E: prediction and evaluation — extrapolate every codelet's time
// on a target from its cluster representative, compare against the
// measured ground truth, and account for the benchmarking-cost
// reduction (Table 5).

// Eval is the Step E outcome on one target architecture.
type Eval struct {
	Target *arch.Machine
	// Per-codelet seconds. Errors[i] is -1 for excluded codelets (no
	// trustworthy measurement; NaN would not survive JSON marshaling).
	Predicted []float64
	Actual    []float64
	Errors    []float64
	Summary   predict.ErrorSummary
	// Excluded counts codelets left out of Summary because a
	// measurement failed past its retry budget — either the codelet's
	// own ground truth on this target, a reference measurement, or its
	// cluster representative's standalone time (which poisons every
	// prediction in that cluster).
	Excluded int
	// Reduction is the benchmarking-cost breakdown (Table 5).
	Reduction predict.ReductionBreakdown
	// Apps aggregates application-level results (Figure 5), aligned
	// with Profile.Apps().
	Apps []AppEval
	// GeoMeanRealSpeedup / GeoMeanPredictedSpeedup summarize Figure 6.
	GeoMeanRealSpeedup      float64
	GeoMeanPredictedSpeedup float64
}

// AppEval is one application's measured and predicted times. Degraded
// marks an application containing excluded codelets: its sums include
// failed (zero) measurements, its ErrorFrac is -1, and it is left out
// of the speedup geomeans.
type AppEval struct {
	Name      string
	RefSec    float64
	ActualSec float64
	PredSec   float64
	ErrorFrac float64
	Degraded  bool
}

// Evaluate predicts every codelet's time on target t from the
// subset's representatives and compares with ground truth.
func (p *Profile) Evaluate(sub *Subset, t int) (*Eval, error) {
	if t < 0 || t >= len(p.Targets) {
		return nil, fmt.Errorf("pipeline: target index %d out of range", t)
	}
	repTimes := make([]float64, sub.Selection.K)
	for k, r := range sub.Selection.Reps {
		repTimes[k] = p.TargetStandalone[t][r]
	}
	predicted, err := sub.Model.Predict(repTimes)
	if err != nil {
		return nil, err
	}
	actual := p.TargetInApp[t]
	errs := predict.Errors(predicted, actual)

	// Exclude codelets without trustworthy numbers on this target: a
	// failed reference or ground-truth measurement, or a representative
	// whose standalone time failed here — the model extrapolates the
	// whole cluster from that one number, so its loss poisons every
	// member's prediction.
	excluded := make([]bool, p.N())
	for i := range excluded {
		excluded[i] = p.refFailedAt(i) || p.targetFailedAt(t, i)
	}
	for k, r := range sub.Selection.Reps {
		if !p.refFailedAt(r) && !p.targetFailedAt(t, r) {
			continue
		}
		for i, l := range sub.Selection.Labels {
			if l == k {
				excluded[i] = true
			}
		}
	}
	kept := make([]float64, 0, len(errs))
	nExcluded := 0
	for i := range errs {
		if excluded[i] {
			errs[i] = -1
			nExcluded++
			continue
		}
		kept = append(kept, errs[i])
	}

	// An all-excluded target leaves no errors to summarize; a zero
	// summary with Excluded == N() says "no data" without smuggling
	// NaNs into JSON encoders.
	var summary predict.ErrorSummary
	if len(kept) > 0 {
		summary = predict.Summarize(kept)
	}
	ev := &Eval{
		Target:    p.Targets[t],
		Predicted: predicted,
		Actual:    actual,
		Errors:    errs,
		Summary:   summary,
		Excluded:  nExcluded,
	}
	ev.Reduction = p.reduction(sub, t)

	apps := p.Apps()
	var refApp, realApp, predApp []float64
	for _, a := range apps {
		ae := AppEval{
			Name:      a.Name,
			RefSec:    a.AppTimes(p.RefInApp),
			ActualSec: a.AppTimes(actual),
			PredSec:   a.AppTimes(predicted),
		}
		for _, i := range a.Codelets {
			if excluded[i] {
				ae.Degraded = true
				break
			}
		}
		if ae.Degraded {
			// Partial sums would masquerade as real application times;
			// flag instead of reporting a number built on zeros.
			ae.ErrorFrac = -1
			ev.Apps = append(ev.Apps, ae)
			continue
		}
		if ae.ActualSec > 0 {
			ae.ErrorFrac = abs(ae.PredSec-ae.ActualSec) / ae.ActualSec
		}
		ev.Apps = append(ev.Apps, ae)
		refApp = append(refApp, ae.RefSec)
		realApp = append(realApp, ae.ActualSec)
		predApp = append(predApp, ae.PredSec)
	}
	// With every application degraded there is no speedup to report;
	// zeros (plus Excluded) beat NaNs that JSON cannot carry.
	if len(refApp) > 0 {
		ev.GeoMeanRealSpeedup = predict.GeoMeanSpeedup(refApp, realApp)
		ev.GeoMeanPredictedSpeedup = predict.GeoMeanSpeedup(refApp, predApp)
	}
	return ev, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// reduction computes the Table 5 accounting for one subset and target.
func (p *Profile) reduction(sub *Subset, t int) predict.ReductionBreakdown {
	return p.ReductionWithRule(sub, t, extract.MinBenchSeconds, extract.MinInvocations)
}

// ReductionWithRule computes the Table 5 accounting under an explicit
// invocation-reduction rule (ablation A4 varies the 1 ms / 10
// invocation thresholds).
func (p *Profile) ReductionWithRule(sub *Subset, t int, minBenchSeconds float64, minInvocations int) predict.ReductionBreakdown {
	rule := func(sa float64) float64 {
		if sa <= 0 {
			return float64(minInvocations)
		}
		n := math.Ceil(minBenchSeconds / sa)
		if n < float64(minInvocations) {
			n = float64(minInvocations)
		}
		return n
	}
	full := 0.0
	for _, a := range p.Apps() {
		full += a.AppTimes(p.TargetInApp[t])
	}
	reducedAll := 0.0
	for i := range p.Codelets {
		sa := p.TargetStandalone[t][i]
		reducedAll += rule(sa) * sa
	}
	reps := 0.0
	for _, r := range sub.Selection.Reps {
		sa := p.TargetStandalone[t][r]
		reps += rule(sa) * sa
	}
	return predict.Reduction(full, reducedAll, reps)
}

// Apps derives the predict.App descriptors from the profile's
// programs (indices into the flattened codelet arrays).
func (p *Profile) Apps() []*predict.App {
	var apps []*predict.App
	index := map[*ir.Program]*predict.App{}
	for i, prog := range p.Progs {
		a, ok := index[prog]
		if !ok {
			a = &predict.App{Name: prog.Name, UncoveredFraction: prog.UncoveredFraction}
			index[prog] = a
			apps = append(apps, a)
		}
		a.Codelets = append(a.Codelets, i)
		a.Invocations = append(a.Invocations, p.Codelets[i].Invocations)
	}
	return apps
}

// Crashpoints: deterministic, env-armed process aborts for crash-
// recovery testing. A durability contract ("a restart finishes what a
// crash interrupted") is only testable if the process can be killed at
// exactly the moments the contract protects — after a journal record
// became durable, halfway through an artifact's bytes, just before the
// rename that publishes them. Each such moment is a named site; arming
// one through the environment makes the process abort the first time
// execution reaches it, so a harness can replay the same crash
// schedule on every run. Unarmed sites cost one string comparison.
package fault

import (
	"fmt"
	"os"
)

// CrashEnv is the environment variable that arms a crashpoint: set it
// to a site name and the process aborts with CrashExitCode the first
// time that site executes. Only one site can be armed per process —
// one crash schedule per run is what keeps recovery tests replayable.
const CrashEnv = "FGBS_CRASHPOINT"

// CrashExitCode is the distinctive status an armed crashpoint exits
// with, so harnesses can tell a deliberate abort from an ordinary
// failure.
const CrashExitCode = 86

// The named crashpoint sites. Each names the instant after (or during)
// a durability-critical step, chosen so that every persistence
// invariant has a crash that would violate it if the code were wrong:
//
//   - CrashAfterJournalWrite: a job record just became durable but the
//     submitter never heard back — recovery must adopt and finish it.
//   - CrashMidArtifactWrite: an artifact's bytes are half-written —
//     the store must never serve the torn file.
//   - CrashBeforeRename: an artifact is fully written but unpublished —
//     a tmp file exists, the published name must not.
const (
	CrashAfterJournalWrite = "jobs/after-journal-write"
	CrashMidArtifactWrite  = "stage/mid-artifact-write"
	CrashBeforeRename      = "stage/before-rename"
)

// Crashpoint aborts the process when site is armed via CrashEnv, and
// is a no-op otherwise. The abort is immediate — no deferred functions
// run, no buffers flush — which is exactly the SIGKILL-like death the
// recovery path must survive.
func Crashpoint(site string) {
	if site == "" || os.Getenv(CrashEnv) != site {
		return
	}
	fmt.Fprintf(os.Stderr, "fault: crashpoint %s armed, aborting\n", site)
	os.Exit(CrashExitCode)
}

// Package cluster implements Step C of the method: agglomerative
// hierarchical clustering of codelet feature vectors with Ward's
// minimum-variance criterion (§3.3), dendrogram recording, cutting at
// a chosen K, and the elbow rule for selecting K automatically.
//
// Clustering operates on already-normalized feature vectors; distances
// are Euclidean so that merging minimizes total within-cluster
// variance, exactly as Ward (1963) defines.
package cluster

import (
	"fmt"
	"math"

	"fgbs/internal/stats"
)

// Linkage selects the agglomeration criterion. The paper uses Ward;
// the alternatives exist for the ablation study.
type Linkage uint8

const (
	// Ward merges the pair minimizing the increase in total
	// within-cluster variance.
	Ward Linkage = iota
	// Single merges by minimum pairwise distance.
	Single
	// Complete merges by maximum pairwise distance.
	Complete
	// Average merges by mean pairwise distance (UPGMA).
	Average
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case Ward:
		return "ward"
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", uint8(l))
	}
}

// Merge records one agglomeration step. Node ids: 0..N-1 are leaves;
// N+i is the cluster created by Merges[i].
type Merge struct {
	A, B int
	// Height is the merge criterion value (for Ward, the squared
	// merge distance in the Lance-Williams recurrence).
	Height float64
	// Size is the number of leaves in the merged cluster.
	Size int
}

// Dendrogram is the full merge history of N leaves.
type Dendrogram struct {
	N       int
	Linkage Linkage
	Merges  []Merge
}

// Build clusters the given points hierarchically. Points must all
// have the same, nonzero dimension; at least one point is required.
//
//fgbs:hot
func Build(points [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	d := &Dendrogram{N: n, Linkage: linkage}
	if n == 1 {
		return d, nil
	}

	// Pairwise squared distances, updated by Lance-Williams. The
	// matrix is symmetric with a zero diagonal, so it is stored in
	// condensed upper-triangular form: one slab of n*(n-1)/2 values
	// instead of n row slices — a single allocation, half the memory,
	// and each pair's distance computed once. cond maps an unordered
	// pair to its slab index (row-major over i < j).
	// active[i] is true while node i is an un-merged cluster root.
	// id[i] is the dendrogram node id of slot i; size[i] its leaves.
	dist := make([]float64, n*(n-1)/2)
	cond := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return i*(2*n-i-1)/2 + (j - i - 1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e := stats.EuclideanDistance(points[i], points[j])
			dist[cond(i, j)] = e * e
		}
	}
	active := make([]bool, n)
	id := make([]int, n)
	size := make([]float64, n)
	for i := range active {
		active[i] = true
		id[i] = i
		size[i] = 1
	}

	d.Merges = make([]Merge, 0, n-1)
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d := dist[cond(i, j)]; d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		ni, nj := size[bi], size[bj]
		d.Merges = append(d.Merges, Merge{
			A: id[bi], B: id[bj], Height: best, Size: int(ni + nj),
		})

		// Merge bj into bi; update distances by Lance-Williams.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			nk := size[k]
			dik, djk := dist[cond(bi, k)], dist[cond(bj, k)]
			var nd float64
			switch linkage {
			case Ward:
				nd = ((ni+nk)*dik + (nj+nk)*djk - nk*best) / (ni + nj + nk)
			case Single:
				nd = math.Min(dik, djk)
			case Complete:
				nd = math.Max(dik, djk)
			case Average:
				nd = (ni*dik + nj*djk) / (ni + nj)
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
			}
			dist[cond(bi, k)] = nd
		}
		active[bj] = false
		size[bi] = ni + nj
		id[bi] = n + step
	}
	return d, nil
}

// Cut assigns each leaf to one of k clusters by undoing the last k-1
// merges. Labels are consecutive integers starting at 0, ordered by
// smallest leaf index. k is clamped to [1, N].
func (d *Dendrogram) Cut(k int) []int {
	if k < 1 {
		k = 1
	}
	if k > d.N {
		k = d.N
	}
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Apply the first N-k merges.
	for i := 0; i < d.N-k; i++ {
		m := d.Merges[i]
		node := d.N + i
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	labels := make([]int, d.N)
	remap := make(map[int]int)
	for leaf := 0; leaf < d.N; leaf++ {
		root := find(leaf)
		if _, ok := remap[root]; !ok {
			remap[root] = len(remap)
		}
		labels[leaf] = remap[root]
	}
	return labels
}

// WithinSS returns the total within-cluster sum of squared distances
// to the cluster centroids for the given assignment.
func WithinSS(points [][]float64, labels []int) float64 {
	cents := Centroids(points, labels)
	total := 0.0
	for i, p := range points {
		c := cents[labels[i]]
		for j := range p {
			diff := p[j] - c[j]
			total += diff * diff
		}
	}
	return total
}

// Centroids returns the mean point of each cluster, indexed by label.
func Centroids(points [][]float64, labels []int) [][]float64 {
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	if k == 0 {
		return nil
	}
	dim := len(points[0])
	cents := make([][]float64, k)
	counts := make([]int, k)
	for i := range cents {
		cents[i] = make([]float64, dim)
	}
	for i, p := range points {
		counts[labels[i]]++
		for j, v := range p {
			cents[labels[i]][j] += v
		}
	}
	for c := range cents {
		if counts[c] == 0 {
			continue
		}
		for j := range cents[c] {
			cents[c][j] /= float64(counts[c])
		}
	}
	return cents
}

// Representatives returns, for each cluster label, the index of the
// member closest to the cluster centroid — the paper's representative
// choice (§3.4). eligible filters candidates; pass nil to allow all.
// A cluster whose members are all ineligible gets representative -1.
func Representatives(points [][]float64, labels []int, eligible func(i int) bool) []int {
	cents := Centroids(points, labels)
	reps := make([]int, len(cents))
	bests := make([]float64, len(cents))
	for c := range reps {
		reps[c] = -1
		bests[c] = math.Inf(1)
	}
	for i, p := range points {
		if eligible != nil && !eligible(i) {
			continue
		}
		c := labels[i]
		d := stats.EuclideanDistance(p, cents[c])
		if d < bests[c] {
			bests[c] = d
			reps[c] = i
		}
	}
	return reps
}

// NearestNeighbor returns the index of the point closest to points[i]
// among those for which allowed returns true (excluding i itself), or
// -1 if none qualifies. It implements §3.4's reassignment of
// ineligible codelets to "the cluster containing its closest
// neighbor".
func NearestNeighbor(points [][]float64, i int, allowed func(j int) bool) int {
	best, bestD := -1, math.Inf(1)
	for j := range points {
		if j == i || (allowed != nil && !allowed(j)) {
			continue
		}
		d := stats.EuclideanDistance(points[i], points[j])
		if d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

// DefaultElbowFrac is the improvement threshold of the elbow rule: K
// stops growing when adding a cluster no longer reduces the within-
// cluster sum of squares by at least this fraction of the total.
const DefaultElbowFrac = 0.006

// Elbow selects the number of clusters with Thorndike's rule: cut
// where the within-cluster variance stops improving significantly.
// Concretely it returns the smallest k whose improvement
// W(k) - W(k+1), relative to W(1), falls below frac for all k' >= k.
// maxK caps the search (clamped to N).
func (d *Dendrogram) Elbow(points [][]float64, maxK int, frac float64) int {
	if maxK > d.N {
		maxK = d.N
	}
	if maxK < 1 {
		maxK = 1
	}
	if frac <= 0 {
		frac = DefaultElbowFrac
	}
	w := make([]float64, maxK+2)
	for k := 1; k <= maxK+1 && k <= d.N; k++ {
		w[k] = WithinSS(points, d.Cut(k))
	}
	total := w[1]
	if total <= 0 {
		return 1
	}
	// Find the last k whose improvement is significant.
	last := 1
	for k := 1; k <= maxK && k < d.N; k++ {
		if (w[k]-w[k+1])/total >= frac {
			last = k + 1
		}
	}
	if last > maxK {
		last = maxK
	}
	return last
}

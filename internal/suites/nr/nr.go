// Package nr defines the 28 Numerical Recipes codelets of the paper's
// training suite (§4.1, Table 3).
//
// Each NR code contributes exactly one codelet (the paper notes a
// one-to-one mapping) and every codelet is well-behaved: its extracted
// microbenchmark reproduces the in-application time. The kernels below
// implement the computation pattern, stride signature, floating-point
// precision and vectorization behavior that Table 3 documents for each
// codelet.
//
// Dataset sizes are chosen so that every working set streams past the
// modeled last-level caches (the sizes, like the cache capacities in
// internal/arch, are scaled by arch.CacheScale), which is what makes
// extraction faithful for the whole training suite. Two layout
// conventions from the paper's Fortran sources are preserved in
// spirit: "column" accesses are contiguous and "row" accesses stride
// by the leading dimension (LDA).
package nr

import (
	"fmt"

	"fgbs/internal/ir"
)

// Dimension parameters (already CacheScale-scaled; see package doc).
const (
	// vecN is the 1-D vector length (2 MB of f64).
	vecN = 1 << 18
	// matN is the square-matrix order (f64 footprint 4.7 MB; even a
	// single-precision triangular half exceeds every modeled cache).
	matN = 768
	// passes repeats sparse-touch kernels so every codelet exceeds
	// the measurable-length floor.
	passes = 100
)

// oneKernel wraps a single codelet into its own program, mirroring
// the one-to-one NR mapping.
func oneKernel(name, pattern string, build func(p *ir.Program) *ir.Codelet) *ir.Program {
	p := ir.NewProgram(name)
	p.SetParam("n", vecN)
	p.SetParam("m", matN)
	p.SetParam("passes", passes)
	p.UncoveredFraction = 0
	c := build(p)
	c.Name = name
	c.Pattern = pattern
	if c.SourceRef == "" {
		c.SourceRef = fmt.Sprintf("NR/%s.f", name)
	}
	if c.Invocations == 0 {
		c.Invocations = 10
	}
	p.MustAddCodelet(c)
	return p
}

// i is the conventional innermost variable in the builders below.
var (
	vi = ir.V("i")
	vj = ir.V("j")
)

// Suite returns the 28 NR programs in Table 3 order.
func Suite() []*ir.Program {
	return []*ir.Program{
		toeplz1(), rstrct29(), mprove8(), toeplz4(), realft4(),
		toeplz3(), svbksb3(), lop13(), toeplz2(), four12(),
		tridag2(), tridag1(), ludcmp4(), hqr15(), relax226(),
		svdcmp14(), svdcmp13(), hqr13(), hqr12sq(), jacobi5(),
		hqr12(), svdcmp11(), elmhes11(), mprove9(), matadd16(),
		svdcmp6(), elmhes10(), balanc3(),
	}
}

// Codelets returns all 28 codelets with their owning programs.
func Codelets() (progs []*ir.Program, codelets []*ir.Codelet) {
	for _, p := range Suite() {
		progs = append(progs, p)
		codelets = append(codelets, p.Codelets[0])
	}
	return progs, codelets
}

// toeplz1: DP, two simultaneous reductions (stride 0 & 1 & -1);
// partially vectorized (the descending reduction stays scalar).
func toeplz1() *ir.Program {
	return oneKernel("toeplz_1", "DP: 2 simultaneous reductions", func(p *ir.Program) *ir.Codelet {
		p.AddArray("r", ir.F64, ir.AT("n", 2))
		p.AddArray("x", ir.F64, ir.AV("n"))
		p.AddScalar("sxn", ir.F64)
		p.AddScalar("sd", ir.F64)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("sxn"),
					RHS: ir.Add(p.LoadE("sxn"), ir.Mul(p.LoadE("r", ir.Add(vi, ir.V("n"))), p.LoadE("x", vi))),
				},
				&ir.Assign{
					LHS:  p.Ref("sd"),
					RHS:  ir.Add(p.LoadE("sd"), ir.Mul(p.LoadE("r", ir.Sub(ir.V("n"), vi)), p.LoadE("x", vi))),
					Hint: ir.VecNever, // descending operand left scalar by icc
				},
			},
		}}
	})
}

// rstrct29: DP, multigrid fine-to-coarse restriction (stencil).
func rstrct29() *ir.Program {
	return oneKernel("rstrct_29", "DP: MG Laplacian fine to coarse mesh transition", func(p *ir.Program) *ir.Codelet {
		p.SetParam("mc", matN/2)
		p.AddArray("uc", ir.F64, ir.AV("mc"), ir.AV("mc"))
		p.AddArray("uf", ir.F64, ir.AV("m"), ir.AV("m"))
		half := ir.CF(0.5)
		quarter := ir.CF(0.125)
		fine := func(di, dj int64) ir.Expr {
			return p.LoadE("uf",
				ir.Add(ir.Mul(ir.CI(2), vi), ir.CI(di)),
				ir.Add(ir.Mul(ir.CI(2), vj), ir.CI(dj)))
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("mc").PlusK(-1), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("mc").PlusK(-1), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("uc", vi, vj),
						RHS: ir.Add(
							ir.Mul(half, fine(0, 0)),
							ir.Mul(quarter, ir.Add(
								ir.Add(fine(0, 1), fine(0, -1)),
								ir.Add(fine(1, 0), fine(-1, 0))))),
					},
				}},
			},
		}}
	})
}

// mprove8: mixed precision dense matrix-vector product — a single-
// precision matrix accumulated in double (NR's iterative improvement).
func mprove8() *ir.Program {
	return oneKernel("mprove_8", "MP: Dense Matrix x vector product", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F32, ir.AV("m"), ir.AV("m"))
		p.AddArray("x", ir.F32, ir.AV("m"))
		p.AddArray("sdp", ir.F64, ir.AV("m"))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("sdp", vi),
						RHS: ir.Add(p.LoadE("sdp", vi),
							ir.Mul(ir.Widen(p.LoadE("a", vi, vj)), ir.Widen(p.LoadE("x", vj)))),
					},
				}},
			},
		}}
	})
}

// toeplz4: DP reduction over ascending/descending vectors, scalar.
func toeplz4() *ir.Program {
	return oneKernel("toeplz_4", "DP: Vector multiply in asc./desc. order", func(p *ir.Program) *ir.Codelet {
		p.AddArray("g", ir.F64, ir.AV("n"))
		p.AddArray("h", ir.F64, ir.AV("n"))
		p.AddScalar("s", ir.F64)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS:  p.Ref("s"),
					RHS:  ir.Add(p.LoadE("s"), ir.Mul(p.LoadE("g", vi), p.LoadE("h", ir.Sub(ir.Sub(ir.V("n"), ir.CI(1)), vi)))),
					Hint: ir.VecNever,
				},
			},
		}}
	})
}

// realft4: DP FFT butterfly with symmetric strides 2 and -2, scalar.
func realft4() *ir.Program {
	return oneKernel("realft_4", "DP: FFT butterfly computation", func(p *ir.Program) *ir.Codelet {
		p.SetParam("nh", vecN/2-2)
		p.AddArray("data", ir.F64, ir.AT("n", 2).PlusK(8))
		p.AddArray("w", ir.F64, ir.AC(4))
		lo := func(off int64, sign bool) ir.Expr {
			idx := ir.Mul(ir.CI(2), vi)
			if sign {
				idx = ir.Sub(ir.Mul(ir.CI(2), ir.V("n")), ir.Mul(ir.CI(2), vi))
			}
			return p.LoadE("data", ir.Add(idx, ir.CI(off)))
		}
		wr := p.LoadE("w", ir.CI(0))
		wi := p.LoadE("w", ir.CI(1))
		h1r := ir.Add(lo(0, false), lo(0, true))
		h1i := ir.Sub(lo(1, false), lo(1, true))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("nh"), Body: []ir.Stmt{
				&ir.Assign{
					LHS:  p.Ref("data", ir.Mul(ir.CI(2), vi)),
					RHS:  ir.Add(ir.Mul(ir.CF(0.5), h1r), ir.Mul(wr, h1i)),
					Hint: ir.VecNever,
				},
				&ir.Assign{
					LHS:  p.Ref("data", ir.Add(ir.Mul(ir.CI(2), vi), ir.CI(1))),
					RHS:  ir.Sub(ir.Mul(ir.CF(0.5), h1i), ir.Mul(wi, h1r)),
					Hint: ir.VecNever,
				},
			},
		}}
	})
}

// toeplz3: DP, three simultaneous reductions, fully vectorized.
func toeplz3() *ir.Program {
	return oneKernel("toeplz_3", "DP: 3 simultaneous reductions", func(p *ir.Program) *ir.Codelet {
		p.AddArray("r", ir.F64, ir.AT("n", 2))
		p.AddArray("g", ir.F64, ir.AV("n"))
		p.AddArray("h", ir.F64, ir.AV("n"))
		p.AddScalar("sgn", ir.F64)
		p.AddScalar("shn", ir.F64)
		p.AddScalar("sgd", ir.F64)
		red := func(acc string, a, b ir.Expr) ir.Stmt {
			return &ir.Assign{LHS: p.Ref(acc), RHS: ir.Add(p.LoadE(acc), ir.Mul(a, b))}
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				red("sgn", p.LoadE("r", ir.Add(vi, ir.V("n"))), p.LoadE("g", vi)),
				red("shn", p.LoadE("r", ir.Add(vi, ir.V("n"))), p.LoadE("h", vi)),
				red("sgd", p.LoadE("g", vi), p.LoadE("h", vi)),
			},
		}}
	})
}

// svbksb3: SP dense matrix-vector product, fully vectorized.
func svbksb3() *ir.Program {
	return oneKernel("svbksb_3", "SP: Dense Matrix x vector product", func(p *ir.Program) *ir.Codelet {
		p.AddArray("u", ir.F32, ir.AV("m"), ir.AV("m"))
		p.AddArray("x", ir.F32, ir.AV("m"))
		p.AddArray("tmp", ir.F32, ir.AV("m"))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("tmp", vi),
						RHS: ir.Add(p.LoadE("tmp", vi), ir.Mul(p.LoadE("u", vi, vj), p.LoadE("x", vj))),
					},
				}},
			},
		}}
	})
}

// lop13: DP five-point Laplacian with constant coefficients.
func lop13() *ir.Program {
	return oneKernel("lop_13", "DP: Laplacian finite difference constant coefficients", func(p *ir.Program) *ir.Codelet {
		p.AddArray("out", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("u", ir.F64, ir.AV("m"), ir.AV("m"))
		at := func(di, dj int64) ir.Expr {
			return p.LoadE("u", ir.Add(vi, ir.CI(di)), ir.Add(vj, ir.CI(dj)))
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("m").PlusK(-1), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("m").PlusK(-1), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("out", vi, vj),
						RHS: ir.Sub(
							ir.Add(ir.Add(at(0, 1), at(0, -1)), ir.Add(at(1, 0), at(-1, 0))),
							ir.Mul(ir.CF(4), at(0, 0))),
					},
				}},
			},
		}}
	})
}

// toeplz2: DP element-wise multiply in ascending/descending order,
// scalar.
func toeplz2() *ir.Program {
	return oneKernel("toeplz_2", "DP: Vector multiply element wise in asc./desc. order", func(p *ir.Program) *ir.Codelet {
		p.AddArray("z", ir.F64, ir.AV("n"))
		p.AddArray("x", ir.F64, ir.AV("n"))
		p.AddArray("y", ir.F64, ir.AV("n"))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS:  p.Ref("z", vi),
					RHS:  ir.Mul(p.LoadE("x", vi), p.LoadE("y", ir.Sub(ir.Sub(ir.V("n"), ir.CI(1)), vi))),
					Hint: ir.VecNever,
				},
			},
		}}
	})
}

// four12: mixed-precision first FFT pass, stride 4, scalar.
func four12() *ir.Program {
	return oneKernel("four1_2", "MP: First step FFT", func(p *ir.Program) *ir.Codelet {
		p.SetParam("nq", vecN/4-1)
		p.AddArray("data", ir.F32, ir.AT("n", 1).PlusK(8))
		p.AddArray("tempd", ir.F64, ir.AC(4))
		elem := func(off int64) ir.Expr {
			return p.LoadE("data", ir.Add(ir.Mul(ir.CI(4), vi), ir.CI(off)))
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("nq"), Body: []ir.Stmt{
				&ir.Assign{
					LHS:  p.Ref("data", ir.Mul(ir.CI(4), vi)),
					RHS:  ir.Narrow(ir.Add(ir.Widen(elem(0)), ir.Mul(p.LoadE("tempd", ir.CI(0)), ir.Widen(elem(2))))),
					Hint: ir.VecNever,
				},
				&ir.Assign{
					LHS:  p.Ref("data", ir.Add(ir.Mul(ir.CI(4), vi), ir.CI(1))),
					RHS:  ir.Narrow(ir.Sub(ir.Widen(elem(1)), ir.Mul(p.LoadE("tempd", ir.CI(1)), ir.Widen(elem(3))))),
					Hint: ir.VecNever,
				},
			},
		}}
	})
}

// tridag2: DP first-order recurrence, backward sweep.
func tridag2() *ir.Program {
	return oneKernel("tridag_2", "DP: First order recurrence", func(p *ir.Program) *ir.Codelet {
		p.AddArray("u", ir.F64, ir.AT("n", 1).PlusK(2))
		p.AddArray("gam", ir.F64, ir.AT("n", 1).PlusK(2))
		back := func(off int64) ir.Expr {
			return p.LoadE("u", ir.Sub(ir.V("n"), ir.Add(vi, ir.CI(off))))
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("u", ir.Sub(ir.V("n"), ir.Add(vi, ir.CI(1)))),
					RHS: ir.Sub(back(1),
						ir.Mul(p.LoadE("gam", ir.Sub(ir.V("n"), vi)), back(0))),
				},
			},
		}}
	})
}

// tridag1: DP first-order recurrence, forward sweep.
func tridag1() *ir.Program {
	return oneKernel("tridag_1", "DP: First order recurrence", func(p *ir.Program) *ir.Codelet {
		p.AddArray("u", ir.F64, ir.AT("n", 1).PlusK(2))
		p.AddArray("r", ir.F64, ir.AT("n", 1).PlusK(2))
		p.AddArray("bet", ir.F64, ir.AT("n", 1).PlusK(2))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("u", vi),
					RHS: ir.Sub(p.LoadE("r", vi),
						ir.Mul(p.LoadE("bet", vi), p.LoadE("u", ir.Sub(vi, ir.CI(1))))),
				},
			},
		}}
	})
}

// ludcmp4: SP dot product over the lower half of a square matrix
// (strides 0, LDA and 1); partially vectorized.
func ludcmp4() *ir.Program {
	return oneKernel("ludcmp_4", "SP: Dot product over lower half square matrix", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F32, ir.AV("m"), ir.AV("m"))
		p.AddArray("b", ir.F32, ir.AV("m"), ir.AV("m"))
		p.AddScalar("sum", ir.F32)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("i"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("sum"),
						RHS: ir.Add(p.LoadE("sum"),
							ir.Mul(p.LoadE("a", vi, vj), p.LoadE("b", vj, vi))),
					},
				}},
			},
		}}
	})
}

// hqr15: SP diagonal update, stride LDA+1, scalar, repeated passes.
func hqr15() *ir.Program {
	return oneKernel("hqr_15", "SP: Addition on the diagonal elements of a matrix", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F32, ir.AV("m"), ir.AV("m"))
		p.AddArray("shift", ir.F32, ir.AC(4))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "k", Lower: ir.AC(0), Upper: ir.AV("passes"), Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("a", vi, vi),
						RHS: ir.Sub(p.LoadE("a", vi, vi), p.LoadE("shift", ir.CI(0))),
					},
				}},
			},
		}}
	})
}

// relax226: DP red-black Gauss-Seidel sweep, scalar.
func relax226() *ir.Program {
	return oneKernel("relax2_26", "DP: Red Black Sweeps Laplacian operator", func(p *ir.Program) *ir.Codelet {
		p.SetParam("mh", matN/2-1)
		p.AddArray("u", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("rhs", ir.F64, ir.AV("m"), ir.AV("m"))
		jj := ir.Mul(ir.CI(2), vj)
		at := func(di, dj int64) ir.Expr {
			return p.LoadE("u", ir.Add(vi, ir.CI(di)), ir.Add(jj, ir.CI(dj)))
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("m").PlusK(-1), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("mh"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("u", vi, jj),
						RHS: ir.Mul(ir.CF(0.25),
							ir.Sub(
								ir.Add(ir.Add(at(0, 1), at(0, -1)), ir.Add(at(1, 0), at(-1, 0))),
								p.LoadE("rhs", vi, jj))),
						Hint: ir.VecNever,
					},
				}},
			},
		}}
	})
}

// svdcmp14: DP element-wise vector divide, vectorized — the divider-
// bound cluster 10 of Table 3.
func svdcmp14() *ir.Program {
	return oneKernel("svdcmp_14", "DP: Vector divide element wise", func(p *ir.Program) *ir.Codelet {
		p.AddArray("x", ir.F64, ir.AV("n"))
		p.AddArray("scale", ir.F64, ir.AC(4))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("x", vi),
					RHS: ir.Div(p.LoadE("x", vi), p.LoadE("scale", ir.CI(0))),
				},
			},
		}}
	})
}

// svdcmp13: DP norm accumulation plus vector divide, vectorized.
func svdcmp13() *ir.Program {
	return oneKernel("svdcmp_13", "DP: Norm + Vector divide", func(p *ir.Program) *ir.Codelet {
		p.AddArray("x", ir.F64, ir.AV("n"))
		p.AddArray("y", ir.F64, ir.AV("n"))
		p.AddScalar("s", ir.F64)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("y", vi),
					RHS: ir.Div(p.LoadE("x", vi), p.LoadE("y", vi)),
				},
				&ir.Assign{
					LHS: p.Ref("s"),
					RHS: ir.Add(p.LoadE("s"), ir.Mul(p.LoadE("x", vi), p.LoadE("x", vi))),
				},
			},
		}}
	})
}

// reductionKernel is the shared shape of the four matrix-sum codelets
// (clusters 11 of Table 3): a running sum over (part of) a matrix.
func reductionKernel(name, pattern string, dt ir.DType, abs bool,
	lower func() ir.Affine, upper func() ir.Affine) *ir.Program {
	return oneKernel(name, pattern, func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", dt, ir.AV("m"), ir.AV("m"))
		p.AddScalar("s", dt)
		val := p.LoadE("a", vi, vj)
		if abs {
			val = ir.Abs(val)
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: lower(), Upper: upper(), Body: []ir.Stmt{
					&ir.Assign{LHS: p.Ref("s"), RHS: ir.Add(p.LoadE("s"), val)},
				}},
			},
		}}
	})
}

// hqr13: DP sum of absolute values of a matrix column (contiguous in
// the Fortran layout the paper analyzes).
func hqr13() *ir.Program {
	return reductionKernel("hqr_13", "DP: Sum of the absolute values of a matrix column",
		ir.F64, true,
		func() ir.Affine { return ir.AC(0) },
		func() ir.Affine { return ir.AV("m") })
}

// hqr12sq: SP sum of a full square matrix.
func hqr12sq() *ir.Program {
	return reductionKernel("hqr_12_sq", "SP: Sum of a square matrix",
		ir.F32, false,
		func() ir.Affine { return ir.AC(0) },
		func() ir.Affine { return ir.AV("m") })
}

// jacobi5: SP sum of the upper half of a square matrix.
func jacobi5() *ir.Program {
	return reductionKernel("jacobi_5", "SP: Sum of the upper half of a square matrix",
		ir.F32, false,
		func() ir.Affine { return ir.AV("i").PlusK(1) },
		func() ir.Affine { return ir.AV("m") })
}

// hqr12: SP sum of the lower half of a square matrix.
func hqr12() *ir.Program {
	return reductionKernel("hqr_12", "SP: Sum of the lower half of a square matrix",
		ir.F32, false,
		func() ir.Affine { return ir.AC(0) },
		func() ir.Affine { return ir.AV("i") })
}

// svdcmp11: DP scaling of a matrix row (LDA stride), scalar.
func svdcmp11() *ir.Program {
	return oneKernel("svdcmp_11", "DP: Multiplying a matrix row by a scalar", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("scale", ir.F64, ir.AC(4))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("a", vi, vj),
						RHS: ir.Mul(p.LoadE("a", vi, vj), p.LoadE("scale", ir.CI(0))),
					},
				}},
			},
		}}
	})
}

// elmhes11: DP linear combination of matrix rows (LDA strides),
// scalar.
func elmhes11() *ir.Program {
	return oneKernel("elmhes_11", "DP: Linear combination of matrix rows", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("yc", ir.F64, ir.AC(4))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "j", Lower: ir.AC(1), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("a", vi, vj),
						RHS: ir.Sub(p.LoadE("a", vi, vj),
							ir.Mul(p.LoadE("yc", ir.CI(0)), p.LoadE("a", vi, ir.Sub(vj, ir.CI(1))))),
					},
				}},
			},
		}}
	})
}

// mprove9: DP vector subtraction, vectorized.
func mprove9() *ir.Program {
	return oneKernel("mprove_9", "DP: Substracting a vector with a vector", func(p *ir.Program) *ir.Codelet {
		p.AddArray("r", ir.F64, ir.AV("n"))
		p.AddArray("sdp", ir.F64, ir.AV("n"))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("r", vi),
					RHS: ir.Sub(p.LoadE("r", vi), p.LoadE("sdp", vi)),
				},
			},
		}}
	})
}

// matadd16: DP element-wise sum of two square matrices, vectorized.
func matadd16() *ir.Program {
	return oneKernel("matadd_16", "DP: Sum of two square matrices element wise", func(p *ir.Program) *ir.Codelet {
		p.AddArray("c", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("b", ir.F64, ir.AV("m"), ir.AV("m"))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("c", vi, vj),
						RHS: ir.Add(p.LoadE("a", vi, vj), p.LoadE("b", vi, vj)),
					},
				}},
			},
		}}
	})
}

// svdcmp6: DP sum of absolute values across a matrix row (LDA
// stride), mostly scalar.
func svdcmp6() *ir.Program {
	return oneKernel("svdcmp_6", "DP: Sum of the absolute values of a matrix row", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddScalar("s", ir.F64)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("s"),
						RHS: ir.Add(p.LoadE("s"), ir.Abs(p.LoadE("a", vi, vj))),
					},
				}},
			},
		}}
	})
}

// elmhes10: DP linear combination of matrix columns (unit stride),
// vectorized.
func elmhes10() *ir.Program {
	return oneKernel("elmhes_10", "DP: Linear combination of matrix columns", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("yc", ir.F64, ir.AC(4))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("a", vi, vj),
						RHS: ir.Add(p.LoadE("a", vi, vj),
							ir.Mul(p.LoadE("yc", ir.CI(0)), p.LoadE("a", ir.Sub(vi, ir.CI(1)), vj))),
					},
				}},
			},
		}}
	})
}

// balanc3: DP element-wise vector multiply, vectorized.
func balanc3() *ir.Program {
	return oneKernel("balanc_3", "DP: Vector multiply element wise", func(p *ir.Program) *ir.Codelet {
		p.AddArray("x", ir.F64, ir.AV("n"))
		p.AddArray("y", ir.F64, ir.AV("n"))
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("x", vi),
					RHS: ir.Mul(p.LoadE("x", vi), p.LoadE("y", vi)),
				},
			},
		}}
	})
}

package server

import (
	"net/http"
	"sync"
	"time"

	"fgbs/internal/stats"
)

// maxLatencySamples bounds the per-endpoint latency reservoir: a ring
// of the most recent samples, enough for stable p50/p90/p99 without
// unbounded growth under heavy traffic.
const maxLatencySamples = 512

// endpointStats aggregates one route's traffic.
type endpointStats struct {
	requests  int64
	errors    int64 // responses with status >= 400
	latencies []float64
	next      int // ring cursor once the reservoir is full
}

// httpMetrics tracks request counts, error counts, in-flight requests
// and per-endpoint latency quantiles for /metricz.
type httpMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats // guarded by mu
	inFlight  int64                     // guarded by mu
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{endpoints: make(map[string]*endpointStats)}
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Wrap instruments a handler under the given route name.
func (m *httpMetrics) Wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //fgbs:allow determinism latency metrics measure real wall time; no experiment result depends on it
		m.mu.Lock()
		m.inFlight++
		m.mu.Unlock()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start).Seconds()

		m.mu.Lock()
		m.inFlight--
		es, ok := m.endpoints[name]
		if !ok {
			es = &endpointStats{}
			m.endpoints[name] = es
		}
		es.requests++
		if sw.status >= 400 {
			es.errors++
		}
		if len(es.latencies) < maxLatencySamples {
			es.latencies = append(es.latencies, elapsed)
		} else {
			es.latencies[es.next] = elapsed
			es.next = (es.next + 1) % maxLatencySamples
		}
		m.mu.Unlock()
	}
}

// endpointMetricsJSON is one route's /metricz entry.
type endpointMetricsJSON struct {
	Requests  int64              `json:"requests"`
	Errors    int64              `json:"errors"`
	LatencyMs map[string]float64 `json:"latencyMs,omitempty"`
}

// snapshot renders the per-endpoint metrics with latency quantiles.
func (m *httpMetrics) snapshot() (map[string]endpointMetricsJSON, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]endpointMetricsJSON, len(m.endpoints))
	for name, es := range m.endpoints {
		e := endpointMetricsJSON{Requests: es.requests, Errors: es.errors}
		if len(es.latencies) > 0 {
			e.LatencyMs = map[string]float64{
				"p50": stats.Quantile(es.latencies, 0.50) * 1e3,
				"p90": stats.Quantile(es.latencies, 0.90) * 1e3,
				"p99": stats.Quantile(es.latencies, 0.99) * 1e3,
			}
		}
		out[name] = e
	}
	return out, m.inFlight
}

// Corpus for the determinism wall-clock and abort exemptions. The
// harness loads this package under the import path
// corpus/internal/fault, so the pacing calls below are sanctioned —
// fault injection delays on the wall clock by design — and so are
// os.Exit-style aborts, which is how the crashpoint hooks kill the
// process at armed sites. time.Now stays a finding even here.
package faultpkg

import (
	"os"
	"time"
)

func delay(d time.Duration) {
	time.Sleep(d)
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// crashpoint mirrors fault.Crashpoint: the env-armed deterministic
// abort the crash-recovery harness drives. Sanctioned here — and only
// here — by the path-suffix exemption.
func crashpoint(site string) {
	if site == "" || os.Getenv("CRASHPOINT") != site {
		return
	}
	os.Exit(86)
}

package corpus

import (
	"reflect"
	"testing"

	"fgbs/internal/features"
	"fgbs/internal/pipeline"
)

// TestCorpusSmokeSubsetEvaluate drives the syn-smoke suite through the
// full Subset→Evaluate pipeline twice and requires identical cluster
// membership and prediction error — the acceptance bar for synthetic
// suites feeding the same machinery as the hand-built ones. ci.sh runs
// this under -race as the corpus smoke gate.
func TestCorpusSmokeSubsetEvaluate(t *testing.T) {
	mask := features.DefaultMask()
	run := func() ([]int, float64) {
		progs, err := BuildSuite("syn-smoke")
		if err != nil {
			t.Fatal(err)
		}
		prof, err := pipeline.NewProfile(progs, pipeline.Options{Seed: 7})
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		sub, err := prof.Subset(mask, 6)
		if err != nil {
			t.Fatalf("subset: %v", err)
		}
		ev, err := prof.Evaluate(sub, 0)
		if err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		return sub.Selection.Labels, ev.Summary.Average
	}
	labels1, err1 := run()
	labels2, err2 := run()
	if !reflect.DeepEqual(labels1, labels2) {
		t.Fatalf("cluster membership unstable across re-runs:\n%v\n%v", labels1, labels2)
	}
	if err1 != err2 {
		t.Fatalf("prediction error unstable across re-runs: %v vs %v", err1, err2)
	}
	if len(labels1) < 20 {
		t.Fatalf("syn-smoke produced only %d clustered codelets", len(labels1))
	}
}

// TestCorpusMix240Pipeline is the scale acceptance test: a registered
// ≥200-codelet synthetic suite runs the staged pipeline end to end
// with stable cluster membership across re-runs. Heavy, so it skips
// under -race and -short; the race-checked path is covered by the
// smoke test above.
func TestCorpusMix240Pipeline(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("heavy 240-codelet pipeline in -short mode")
	}
	progs, err := BuildSuite("syn-mix-240")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, p := range progs {
		n += len(p.Codelets)
	}
	if n < 200 {
		t.Fatalf("syn-mix-240 has %d codelets, want >= 200", n)
	}
	mask := features.DefaultMask()
	run := func() ([]int, float64) {
		prof, err := pipeline.NewProfile(progs, pipeline.Options{Seed: 20140215})
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		if prof.Degraded() {
			t.Fatal("raw-simulator profile carries failure markers")
		}
		sub, err := prof.Subset(mask, 15)
		if err != nil {
			t.Fatalf("subset: %v", err)
		}
		ev, err := prof.Evaluate(sub, 0)
		if err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		return sub.Selection.Labels, ev.Summary.Average
	}
	labels1, err1 := run()
	labels2, err2 := run()
	if !reflect.DeepEqual(labels1, labels2) {
		t.Fatal("cluster membership unstable across re-runs on syn-mix-240")
	}
	if err1 != err2 {
		t.Fatalf("prediction error unstable across re-runs: %v vs %v", err1, err2)
	}
	if k := 0; true {
		for _, l := range labels1 {
			if l+1 > k {
				k = l + 1
			}
		}
		if k < 2 {
			t.Fatalf("degenerate clustering: %d clusters", k)
		}
	}
}

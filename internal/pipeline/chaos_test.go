package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/ir"
	"fgbs/internal/measure"
)

// chaosSeed pins every chaos schedule; the ci.sh chaos gate depends on
// these tests being replayable.
const chaosSeed = 20140215

func chaosSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// chaosSuite is tinySuite scaled down (smaller arrays, just enough
// invocations for the median/MAD machinery): the chaos tests rebuild
// profiles many times and run under -race in the ci.sh chaos gate, so
// each build must stay cheap on a single-core runner. Every chaos
// comparison is against a clean build of this same suite, never
// against tinyProfile.
func chaosSuite() []*ir.Program {
	progs := tinySuite()
	for _, p := range progs {
		p.SetParam("n", 25000)
		for _, c := range p.Codelets {
			c.Invocations = 12
		}
	}
	return progs
}

var (
	chaosCleanOnce sync.Once
	chaosCleanProf *Profile
	chaosCleanErr  error
)

// chaosClean is the fault-free, measurer-free baseline profile of
// chaosSuite, built once per test binary.
func chaosClean(t *testing.T) *Profile {
	t.Helper()
	chaosCleanOnce.Do(func() {
		chaosCleanProf, chaosCleanErr = NewProfile(chaosSuite(), Options{Seed: 1})
	})
	if chaosCleanErr != nil {
		t.Fatal(chaosCleanErr)
	}
	return chaosCleanProf
}

// chaosMeasurer composes the tentpole stack: robust protocol over a
// deterministic fault injector over the raw simulator.
func chaosMeasurer(p *fault.Profile, cfg measure.Config) fault.Measurer {
	if cfg.Sleep == nil {
		cfg.Sleep = chaosSleep
	}
	return measure.New(fault.NewInjector(p, nil), cfg)
}

// TestNoFaultProfileIsByteIdentical is the regression guard of the
// acceptance criteria: running the full measurement stack with an
// empty fault profile and a transparent robust config serializes
// byte-for-byte like the fault-unaware pipeline.
func TestNoFaultProfileIsByteIdentical(t *testing.T) {
	clean := chaosClean(t)
	transparent, err := NewProfile(chaosSuite(), Options{
		Seed:     1,
		Measurer: chaosMeasurer(&fault.Profile{}, measure.Config{Invocations: -1, MADK: -1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if transparent.Degraded() {
		t.Error("clean run reported degraded")
	}
	var a, b bytes.Buffer
	if err := clean.SaveJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := transparent.SaveJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("transparent measurement stack changed the serialized profile")
	}
}

// TestChaosTransientSchedulesConverge injects flaky targets and a
// machine-down episode everywhere; with retries the profile must be
// byte-identical to a fault-free run of the same robust protocol.
func TestChaosTransientSchedulesConverge(t *testing.T) {
	faults := &fault.Profile{Seed: chaosSeed, Rules: []fault.Rule{
		{Machine: "Atom", TransientRate: 0.3, DownFor: 2},
		{TransientRate: 0.2},
	}}
	cfg := measure.Config{MaxAttempts: 12}
	flaky, err := NewProfile(chaosSuite(), Options{Seed: 1, Measurer: chaosMeasurer(faults, cfg)})
	if err != nil {
		t.Fatalf("transient schedule did not converge: %v", err)
	}
	if flaky.Degraded() {
		t.Fatal("transient faults left permanent failure markers")
	}
	calm, err := NewProfile(chaosSuite(), Options{Seed: 1, Measurer: chaosMeasurer(&fault.Profile{}, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := flaky.SaveJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := calm.SaveJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("retried transients changed measurement values")
	}
}

// TestChaosBoundedNoiseStaysAccurate checks the headline robustness
// claim: under bounded multiplicative noise plus occasional outlier
// invocations, the robust protocol keeps subset-prediction error
// within 2x of the clean error (plus a small absolute floor for
// near-zero clean errors).
func TestChaosBoundedNoiseStaysAccurate(t *testing.T) {
	clean := chaosClean(t)
	cleanSub, err := clean.Subset(tinyMask, 4)
	if err != nil {
		t.Fatal(err)
	}
	faults := &fault.Profile{Seed: chaosSeed, Rules: []fault.Rule{
		{NoiseAmp: 0.05, OutlierRate: 0.1, OutlierScale: 10, TransientRate: 0.1},
	}}
	noisy, err := NewProfile(chaosSuite(), Options{Seed: 1, Measurer: chaosMeasurer(faults, measure.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	noisySub, err := noisy.Subset(tinyMask, 4)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range clean.Targets {
		cleanEv, err := clean.Evaluate(cleanSub, tt)
		if err != nil {
			t.Fatal(err)
		}
		noisyEv, err := noisy.Evaluate(noisySub, tt)
		if err != nil {
			t.Fatal(err)
		}
		if noisyEv.Excluded != 0 {
			t.Errorf("%s: bounded noise excluded %d codelets", clean.Targets[tt].Name, noisyEv.Excluded)
		}
		bound := 2*cleanEv.Summary.Median + 0.05
		if noisyEv.Summary.Median > bound {
			t.Errorf("%s: noisy median error %.4f exceeds bound %.4f (clean %.4f)",
				clean.Targets[tt].Name, noisyEv.Summary.Median, bound, cleanEv.Summary.Median)
		}
	}
}

// TestChaosPermanentFailureDegradesLoudly breaks one codelet outright:
// the profile must still build, mark the loss, screen the codelet out
// of representative selection, and exclude it from error statistics —
// visibly, not silently.
func TestChaosPermanentFailureDegradesLoudly(t *testing.T) {
	faults := &fault.Profile{Seed: chaosSeed, Rules: []fault.Rule{
		{Codelet: "beta_gather", PermanentRate: 1},
	}}
	prof, err := NewProfile(chaosSuite(), Options{Seed: 1, Measurer: chaosMeasurer(faults, measure.Config{})})
	if err != nil {
		t.Fatalf("one broken codelet aborted the profile: %v", err)
	}
	if !prof.Degraded() {
		t.Fatal("broken codelet left no failure markers")
	}
	broken := -1
	for i, c := range prof.Codelets {
		if c.Name == "beta_gather" {
			broken = i
		}
	}
	if broken < 0 {
		t.Fatal("fixture lost beta_gather")
	}
	if !prof.RefFailed[broken] || !prof.IllBehaved[broken] {
		t.Errorf("broken codelet not screened: refFailed=%v ill=%v",
			prof.RefFailed[broken], prof.IllBehaved[broken])
	}

	sub, err := prof.Subset(tinyMask, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sub.Selection.Reps {
		if r == broken {
			t.Error("broken codelet chosen as representative")
		}
	}
	ev, err := prof.Evaluate(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Excluded == 0 {
		t.Error("no codelets excluded despite a permanent failure")
	}
	if ev.Errors[broken] != -1 {
		t.Errorf("excluded codelet error = %g, want the -1 marker", ev.Errors[broken])
	}
	degradedApps := 0
	for _, a := range ev.Apps {
		if a.Degraded {
			degradedApps++
			if a.ErrorFrac != -1 {
				t.Errorf("degraded app %s has error %g, want -1", a.Name, a.ErrorFrac)
			}
		}
	}
	if degradedApps != 1 {
		t.Errorf("degraded apps = %d, want exactly beta", degradedApps)
	}
	if _, err := json.Marshal(ev); err != nil {
		t.Errorf("degraded eval not JSON-marshalable: %v", err)
	}

	// Failure markers survive the save/load round trip.
	var buf bytes.Buffer
	if err := prof.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfile(&buf, chaosSuite())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Degraded() || !back.RefFailed[broken] {
		t.Error("failure markers lost in serialization round trip")
	}
}

// TestChaosTargetOutageIsVisible downs one target machine completely:
// evaluation there reports everything excluded (zero summary, -1
// markers), while the other targets stay clean.
func TestChaosTargetOutageIsVisible(t *testing.T) {
	faults := &fault.Profile{Seed: chaosSeed, Rules: []fault.Rule{
		{Machine: "Atom", PermanentRate: 1},
	}}
	prof, err := NewProfile(chaosSuite(), Options{Seed: 1, Measurer: chaosMeasurer(faults, measure.Config{})})
	if err != nil {
		t.Fatalf("downed target aborted the profile: %v", err)
	}
	if !prof.Degraded() {
		t.Fatal("target outage left no markers")
	}
	sub, err := prof.Subset(tinyMask, 4)
	if err != nil {
		t.Fatal(err)
	}
	atom, err := prof.TargetIndex("Atom")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := prof.Evaluate(sub, atom)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Excluded != prof.N() {
		t.Errorf("excluded = %d, want all %d", ev.Excluded, prof.N())
	}
	if ev.Summary.Median != 0 || ev.Summary.Max != 0 {
		t.Errorf("all-excluded summary not zeroed: %+v", ev.Summary)
	}
	if _, err := json.Marshal(ev); err != nil {
		t.Errorf("outage eval not JSON-marshalable: %v", err)
	}
	for tt := range prof.Targets {
		if tt == atom {
			continue
		}
		other, err := prof.Evaluate(sub, tt)
		if err != nil {
			t.Fatal(err)
		}
		if other.Excluded != 0 {
			t.Errorf("%s: healthy target excluded %d codelets", prof.Targets[tt].Name, other.Excluded)
		}
	}
}

// Package features defines the canonical 76-feature performance
// signature used to cluster codelets, mirroring §3.2: "MAQAO and
// Likwid gather 76 different features. A subset of these features
// produce codelets' feature vectors."
//
// The catalog has three groups:
//
//   - Likwid: dynamic metrics derived from the reference-architecture
//     profiling run (internal/sim + internal/metrics),
//   - MAQAO: static innermost-loop metrics (internal/maqao),
//   - Structure: source-level access-pattern descriptors (strides,
//     nest shape) computed from the IR; MAQAO derives the equivalent
//     information from the binary's addressing modes.
//
// A Mask selects a feature subset; the genetic algorithm of §4.2
// searches the space of masks, and PaperMask returns the equivalent of
// the paper's Table 2 winner.
package features

import (
	"fmt"
	"math"

	"fgbs/internal/ir"
	"fgbs/internal/maqao"
	"fgbs/internal/metrics"
	"fgbs/internal/sim"
	"fgbs/internal/stats"
)

// NumFeatures is the size of the full catalog, matching the paper.
const NumFeatures = 76

// Group labels a feature's provenance.
type Group uint8

const (
	// GroupLikwid marks dynamic, counter-derived features.
	GroupLikwid Group = iota
	// GroupMAQAO marks static loop-analysis features.
	GroupMAQAO
	// GroupStructure marks IR-level access-pattern features.
	GroupStructure
)

// String names the group.
func (g Group) String() string {
	switch g {
	case GroupLikwid:
		return "likwid"
	case GroupMAQAO:
		return "maqao"
	default:
		return "structure"
	}
}

// Descriptor documents one catalog entry.
type Descriptor struct {
	Index int
	Name  string
	Group Group
	// Log marks features stored on a log10 scale because their raw
	// dynamic range spans orders of magnitude (rates, counts).
	Log bool
}

// Feature indices. The order is fixed: it defines the GA's genome
// layout and the mask serialization.
const (
	// Likwid dynamic features.
	FExecSeconds = iota
	FCPI
	FMFLOPS
	FVecFPShare
	FL1MissRate
	FL2BandwidthMBs
	FL3BandwidthMBs
	FL3MissRate
	FMemBandwidthMBs
	FMemAccessPerInstr
	FOpIntensity
	FL1HitRate
	FL2MissRate
	FMemWritebackShare
	FLoadsPerInstr
	FStoresPerInstr
	FFPPerInstr
	FIntPerInstr
	FLoadStoreRatio
	FInstrPerInvocation
	FCyclesPerInvocation
	FFPOpsPerInvocation
	FMemBytesPerInvocation
	FWorkingSetBytes
	FComputeShare
	FBandwidthShare
	FLatencyShare
	FFAddShare
	FFMulShare
	FFDivShare
	FFSqrtShare
	FFSpecialShare
	FF32ShareDyn
	FVecFPOpsPerCycle

	// MAQAO static features.
	FLoopInstr
	FEstIPCL1
	FBytesStoredPerCycle
	FBytesLoadedPerCycle
	FDepStallCycles
	FChainCyclesPerIter
	FCyclesPerIterL1
	FPressureP0
	FPressureP1
	FPressureLoad
	FPressureStore
	FPressureInt
	FNumFPDiv
	FNumSpecial
	FNumSD
	FAddSubMulRatio
	FVecRatioMul
	FVecRatioAdd
	FVecRatioOther
	FVecRatioInt
	FVecRatioAll
	FF32ShareStatic
	FRegistersUsed
	FLoadsPerIter
	FStoresPerIter
	FFPOpsPerIter
	FIntOpsPerIter
	FGatherLoadsPerIter
	FAvgVecLanes
	FReductionShare
	FRecurrenceShare
	FInstrPerFP

	// Structural features.
	FStrideUnitShare
	FStrideConstShare
	FStrideIndirectShare
	FStrideOtherShare
	FNumInnerLoops
	FNestDepth
	FEstInnerTrip
	FNumStatements
	FNumArrays
	FDimensionality

	numFeaturesCheck
)

// catalog holds the descriptors, indexed by feature id.
var catalog = buildCatalog()

func buildCatalog() []Descriptor {
	d := make([]Descriptor, NumFeatures)
	set := func(idx int, name string, g Group, log bool) {
		d[idx] = Descriptor{Index: idx, Name: name, Group: g, Log: log}
	}
	set(FExecSeconds, "exec_seconds", GroupLikwid, true)
	set(FCPI, "cycles_per_instr", GroupLikwid, false)
	set(FMFLOPS, "mflops", GroupLikwid, true)
	set(FVecFPShare, "vec_fp_share", GroupLikwid, false)
	set(FL1MissRate, "l1_miss_rate", GroupLikwid, false)
	set(FL2BandwidthMBs, "l2_bandwidth_mbs", GroupLikwid, true)
	set(FL3BandwidthMBs, "l3_bandwidth_mbs", GroupLikwid, true)
	set(FL3MissRate, "l3_miss_rate", GroupLikwid, false)
	set(FMemBandwidthMBs, "mem_bandwidth_mbs", GroupLikwid, true)
	set(FMemAccessPerInstr, "mem_access_per_instr", GroupLikwid, false)
	set(FOpIntensity, "op_intensity", GroupLikwid, true)
	set(FL1HitRate, "l1_hit_rate", GroupLikwid, false)
	set(FL2MissRate, "l2_miss_rate", GroupLikwid, false)
	set(FMemWritebackShare, "mem_writeback_share", GroupLikwid, false)
	set(FLoadsPerInstr, "loads_per_instr", GroupLikwid, false)
	set(FStoresPerInstr, "stores_per_instr", GroupLikwid, false)
	set(FFPPerInstr, "fp_per_instr", GroupLikwid, false)
	set(FIntPerInstr, "int_per_instr", GroupLikwid, false)
	set(FLoadStoreRatio, "load_store_ratio", GroupLikwid, false)
	set(FInstrPerInvocation, "instr_per_invocation", GroupLikwid, true)
	set(FCyclesPerInvocation, "cycles_per_invocation", GroupLikwid, true)
	set(FFPOpsPerInvocation, "fp_ops_per_invocation", GroupLikwid, true)
	set(FMemBytesPerInvocation, "mem_bytes_per_invocation", GroupLikwid, true)
	set(FWorkingSetBytes, "working_set_bytes", GroupLikwid, true)
	set(FComputeShare, "compute_share", GroupLikwid, false)
	set(FBandwidthShare, "bandwidth_share", GroupLikwid, false)
	set(FLatencyShare, "latency_share", GroupLikwid, false)
	set(FFAddShare, "fadd_share", GroupLikwid, false)
	set(FFMulShare, "fmul_share", GroupLikwid, false)
	set(FFDivShare, "fdiv_share", GroupLikwid, false)
	set(FFSqrtShare, "fsqrt_share", GroupLikwid, false)
	set(FFSpecialShare, "fspecial_share", GroupLikwid, false)
	set(FF32ShareDyn, "f32_share_dyn", GroupLikwid, false)
	set(FVecFPOpsPerCycle, "vec_fp_ops_per_cycle", GroupLikwid, false)

	set(FLoopInstr, "loop_instr", GroupMAQAO, false)
	set(FEstIPCL1, "est_ipc_l1", GroupMAQAO, false)
	set(FBytesStoredPerCycle, "bytes_stored_per_cycle", GroupMAQAO, false)
	set(FBytesLoadedPerCycle, "bytes_loaded_per_cycle", GroupMAQAO, false)
	set(FDepStallCycles, "dep_stall_cycles", GroupMAQAO, false)
	set(FChainCyclesPerIter, "chain_cycles_per_iter", GroupMAQAO, false)
	set(FCyclesPerIterL1, "cycles_per_iter_l1", GroupMAQAO, false)
	set(FPressureP0, "pressure_p0", GroupMAQAO, false)
	set(FPressureP1, "pressure_p1", GroupMAQAO, false)
	set(FPressureLoad, "pressure_load", GroupMAQAO, false)
	set(FPressureStore, "pressure_store", GroupMAQAO, false)
	set(FPressureInt, "pressure_int", GroupMAQAO, false)
	set(FNumFPDiv, "num_fp_div", GroupMAQAO, false)
	set(FNumSpecial, "num_special", GroupMAQAO, false)
	set(FNumSD, "num_sd", GroupMAQAO, false)
	set(FAddSubMulRatio, "add_sub_mul_ratio", GroupMAQAO, false)
	set(FVecRatioMul, "vec_ratio_mul", GroupMAQAO, false)
	set(FVecRatioAdd, "vec_ratio_add", GroupMAQAO, false)
	set(FVecRatioOther, "vec_ratio_other", GroupMAQAO, false)
	set(FVecRatioInt, "vec_ratio_int", GroupMAQAO, false)
	set(FVecRatioAll, "vec_ratio_all", GroupMAQAO, false)
	set(FF32ShareStatic, "f32_share_static", GroupMAQAO, false)
	set(FRegistersUsed, "registers_used", GroupMAQAO, false)
	set(FLoadsPerIter, "loads_per_iter", GroupMAQAO, false)
	set(FStoresPerIter, "stores_per_iter", GroupMAQAO, false)
	set(FFPOpsPerIter, "fp_ops_per_iter", GroupMAQAO, false)
	set(FIntOpsPerIter, "int_ops_per_iter", GroupMAQAO, false)
	set(FGatherLoadsPerIter, "gather_loads_per_iter", GroupMAQAO, false)
	set(FAvgVecLanes, "avg_vec_lanes", GroupMAQAO, false)
	set(FReductionShare, "reduction_share", GroupMAQAO, false)
	set(FRecurrenceShare, "recurrence_share", GroupMAQAO, false)
	set(FInstrPerFP, "instr_per_fp", GroupMAQAO, false)

	set(FStrideUnitShare, "stride_unit_share", GroupStructure, false)
	set(FStrideConstShare, "stride_const_share", GroupStructure, false)
	set(FStrideIndirectShare, "stride_indirect_share", GroupStructure, false)
	set(FStrideOtherShare, "stride_other_share", GroupStructure, false)
	set(FNumInnerLoops, "num_inner_loops", GroupStructure, false)
	set(FNestDepth, "nest_depth", GroupStructure, false)
	set(FEstInnerTrip, "est_inner_trip", GroupStructure, true)
	set(FNumStatements, "num_statements", GroupStructure, false)
	set(FNumArrays, "num_arrays", GroupStructure, false)
	set(FDimensionality, "dimensionality", GroupStructure, false)
	return d
}

// Catalog returns the descriptor list (do not mutate).
func Catalog() []Descriptor { return catalog }

// ByName returns the descriptor for a feature name.
func ByName(name string) (Descriptor, error) {
	for _, d := range catalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("features: unknown feature %q", name)
}

// logScale compresses wide-dynamic-range positive values.
func logScale(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log10(1 + v)
}

// Assemble builds the full 76-entry feature vector for one codelet
// from its reference-architecture measurement (Likwid role), static
// analysis (MAQAO role) and IR structure.
func Assemble(p *ir.Program, c *ir.Codelet, meas *sim.Measurement, st maqao.Static) []float64 {
	dyn := metrics.Derive(meas.Counters)
	ctr := meas.Counters
	v := make([]float64, NumFeatures)

	v[FExecSeconds] = dyn.Seconds
	v[FCPI] = dyn.CyclesPerInstr
	v[FMFLOPS] = dyn.MFLOPS
	v[FVecFPShare] = dyn.VecFPShare
	v[FL1MissRate] = dyn.L1MissRate
	v[FL2BandwidthMBs] = dyn.L2BandwidthMBs
	v[FL3BandwidthMBs] = dyn.L3BandwidthMBs
	v[FL3MissRate] = dyn.L3MissRate
	v[FMemBandwidthMBs] = dyn.MemBandwidthMBs
	v[FMemAccessPerInstr] = dyn.MemAccessPerInstr
	v[FOpIntensity] = dyn.OpIntensity
	v[FL1HitRate] = 1 - dyn.L1MissRate
	if len(ctr.LevelMisses) > 1 {
		l2 := ctr.LevelHits[1] + ctr.LevelMisses[1]
		if l2 > 0 {
			v[FL2MissRate] = float64(ctr.LevelMisses[1]) / float64(l2)
		}
	}
	if t := ctr.MemAccesses + ctr.MemWritebacks; t > 0 {
		v[FMemWritebackShare] = float64(ctr.MemWritebacks) / float64(t)
	}
	if ctr.Instructions > 0 {
		v[FLoadsPerInstr] = ctr.MemLoads / ctr.Instructions
		v[FStoresPerInstr] = ctr.MemStores / ctr.Instructions
		v[FFPPerInstr] = float64(ctr.Ops.FPOps()) / ctr.Instructions
		v[FIntPerInstr] = float64(ctr.Ops.IntOps) / ctr.Instructions
	}
	if ctr.MemStores > 0 {
		v[FLoadStoreRatio] = ctr.MemLoads / ctr.MemStores
	} else {
		v[FLoadStoreRatio] = ctr.MemLoads
	}
	v[FInstrPerInvocation] = ctr.Instructions
	v[FCyclesPerInvocation] = ctr.Cycles
	v[FFPOpsPerInvocation] = float64(ctr.Ops.FPOps())
	v[FMemBytesPerInvocation] = float64(ctr.MemAccesses+ctr.MemWritebacks) * 64
	v[FWorkingSetBytes] = float64(meas.WorkingSetBytes)
	if ctr.Cycles > 0 {
		v[FComputeShare] = ctr.ComputeCycles / ctr.Cycles
		v[FBandwidthShare] = ctr.BandwidthCycles / ctr.Cycles
		v[FLatencyShare] = ctr.ExposedLatCycles / ctr.Cycles
	}
	if fp := float64(ctr.Ops.FPOps()); fp > 0 {
		v[FFAddShare] = float64(ctr.Ops.FAdd) / fp
		v[FFMulShare] = float64(ctr.Ops.FMul) / fp
		v[FFDivShare] = float64(ctr.Ops.FDiv) / fp
		v[FFSqrtShare] = float64(ctr.Ops.FSqrt) / fp
		v[FFSpecialShare] = float64(ctr.Ops.FSpecial) / fp
		v[FF32ShareDyn] = float64(ctr.Ops.F32Ops) / fp
	}
	if ctr.Cycles > 0 {
		v[FVecFPOpsPerCycle] = ctr.VecFPOps / ctr.Cycles
	}

	v[FLoopInstr] = st.LoopInstr
	v[FEstIPCL1] = st.EstIPCL1
	v[FBytesStoredPerCycle] = st.BytesStoredPerCycle
	v[FBytesLoadedPerCycle] = st.BytesLoadedPerCycle
	v[FDepStallCycles] = st.DepStallCycles
	v[FChainCyclesPerIter] = st.ChainCyclesPerIter
	v[FCyclesPerIterL1] = st.CyclesPerIterL1
	v[FPressureP0] = st.PressureP0
	v[FPressureP1] = st.PressureP1
	v[FPressureLoad] = st.PressureLoad
	v[FPressureStore] = st.PressureStore
	v[FPressureInt] = st.PressureInt
	v[FNumFPDiv] = st.NumFPDiv
	v[FNumSpecial] = st.NumSpecial
	v[FNumSD] = st.NumSD
	v[FAddSubMulRatio] = st.AddSubMulRatio
	v[FVecRatioMul] = st.VecRatioMul
	v[FVecRatioAdd] = st.VecRatioAdd
	v[FVecRatioOther] = st.VecRatioOther
	v[FVecRatioInt] = st.VecRatioInt
	v[FVecRatioAll] = st.VecRatioAll
	v[FF32ShareStatic] = st.F32Share
	v[FRegistersUsed] = st.RegistersUsed
	v[FLoadsPerIter] = st.LoadsPerIter
	v[FStoresPerIter] = st.StoresPerIter
	v[FFPOpsPerIter] = st.FPOpsPerIter
	v[FIntOpsPerIter] = st.IntOpsPerIter
	v[FGatherLoadsPerIter] = st.GatherLoadsPerIter
	v[FAvgVecLanes] = st.AvgVecLanes
	v[FReductionShare] = st.ReductionShare
	v[FRecurrenceShare] = st.RecurrenceShare
	if st.FPOpsPerIter > 0 {
		v[FInstrPerFP] = st.LoopInstr / st.FPOpsPerIter
	} else {
		v[FInstrPerFP] = st.LoopInstr
	}

	fillStructural(v, p, c)

	for i, d := range catalog {
		if d.Log {
			v[i] = logScale(v[i])
		}
	}
	return v
}

// fillStructural computes the IR-level access-pattern features.
func fillStructural(v []float64, p *ir.Program, c *ir.Codelet) {
	inner := c.InnermostLoops()
	v[FNumInnerLoops] = float64(len(inner))

	depth := 0
	var unit, constS, indirect, other, total float64
	var stmts float64
	arrays := map[string]bool{}
	maxDim := 0
	tripSum := 0.0
	for _, lc := range inner {
		if d := len(lc.Outer) + 1; d > depth {
			depth = d
		}
		sum := p.Accesses(lc)
		all := append(append([]ir.RefAccess(nil), sum.Loads...), sum.Stores...)
		for _, a := range all {
			if len(a.Ref.Index) == 0 {
				continue // register-allocated scalar
			}
			total++
			arrays[a.Ref.Array] = true
			if len(a.Ref.Index) > maxDim {
				maxDim = len(a.Ref.Index)
			}
			switch a.Stride.Kind {
			case ir.StrideIndirect:
				indirect++
			case ir.StrideConst:
				constS++
			default:
				if a.Stride.Elems == 1 || a.Stride.Elems == -1 {
					unit++
				} else {
					other++
				}
			}
		}
		for _, s := range lc.Loop.Body {
			if _, ok := s.(*ir.Assign); ok {
				stmts++
			}
		}
		tripSum += estTrip(lc, p.Params)
	}
	if total > 0 {
		v[FStrideUnitShare] = unit / total
		v[FStrideConstShare] = constS / total
		v[FStrideIndirectShare] = indirect / total
		v[FStrideOtherShare] = other / total
	}
	v[FNestDepth] = float64(depth)
	if len(inner) > 0 {
		v[FEstInnerTrip] = tripSum / float64(len(inner))
	}
	v[FNumStatements] = stmts
	v[FNumArrays] = float64(len(arrays))
	v[FDimensionality] = float64(maxDim)
}

func estTrip(lc *ir.LoopContext, params map[string]int64) float64 {
	env := make(map[string]int64, len(params)+len(lc.Outer))
	for k, val := range params {
		env[k] = val
	}
	for _, vv := range lc.Outer {
		env[vv] = 0
	}
	trip := lc.Loop.TripCount(env)
	if len(lc.Outer) > 0 {
		for _, vv := range lc.Outer {
			env[vv] = trip / 2
		}
		trip = lc.Loop.TripCount(env)
	}
	if trip < 1 {
		trip = 1
	}
	return float64(trip)
}

// NormalizeMatrix z-scores feature columns across codelets (§3.3).
func NormalizeMatrix(rows [][]float64) { stats.Normalize(rows) }

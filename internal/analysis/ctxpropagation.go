package analysis

import (
	"go/ast"
	"go/types"
)

// ctxPropagationCheck keeps cancellation flowing: a function that was
// handed a context.Context must pass it on. Inside such functions it
// flags (a) call arguments built from context.Background() or
// context.TODO(), which sever the caller's cancellation, and (b) calls
// to a context-free function when a Context-taking sibling exists —
// the SweepK / SweepKContext naming convention used throughout
// internal/pipeline and internal/ga.
var ctxPropagationCheck = &Check{
	Name: "ctxpropagation",
	Doc:  "in ctx-holding functions, forbid context.Background()/TODO() args and non-Context variants when a Context variant exists",
	run:  runCtxPropagation,
}

func runCtxPropagation(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hasCtxParam(p, fn.Type) {
					scanCtxBody(p, fn.Body)
					return false // scanCtxBody covered nested funcs
				}
			case *ast.FuncLit:
				if hasCtxParam(p, fn.Type) {
					scanCtxBody(p, fn.Body)
					return false
				}
			}
			return true
		})
	}
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// scanCtxBody inspects a function body known to have ctx in scope.
// Nested function literals are included: closures still see ctx.
func scanCtxBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if name := freshContextCall(p, arg); name != "" {
				p.Reportf(arg.Pos(), "context.%s() passed while a ctx is in scope; pass the caller's ctx so cancellation propagates", name)
			}
		}
		checkContextVariant(p, call)
		return true
	})
}

// freshContextCall returns "Background" or "TODO" when expr is a call
// to the corresponding context constructor, else "".
func freshContextCall(p *Pass, expr ast.Expr) string {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if name := obj.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// checkContextVariant flags calls to a context-free function or method
// X when a sibling XContext with a context.Context parameter exists.
func checkContextVariant(p *Pass, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	obj, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return
	}
	variant := obj.Name() + "Context"
	var found *types.Func
	if recv := sig.Recv(); recv != nil {
		vobj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, obj.Pkg(), variant)
		found, _ = vobj.(*types.Func)
	} else if scope := obj.Pkg().Scope(); scope != nil {
		found, _ = scope.Lookup(variant).(*types.Func)
	}
	if found == nil {
		return
	}
	if vsig, ok := found.Type().(*types.Signature); !ok || !signatureTakesContext(vsig) {
		return
	}
	p.Reportf(call.Pos(), "%s drops the in-scope ctx; call %s so cancellation propagates", obj.Name(), variant)
}

func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// Package pipeline orchestrates the five steps of the benchmark
// reduction method (Figure 1):
//
//	Step A  codelet detection        — the suites provide programs
//	                                   already decomposed into codelets;
//	                                   Detect validates and flattens them.
//	Step B  profiling                — Profile measures every codelet
//	                                   in-application on the reference
//	                                   machine, runs the MAQAO-style
//	                                   static analysis, and assembles the
//	                                   76-entry feature vectors. It also
//	                                   collects the standalone and
//	                                   ground-truth target measurements
//	                                   the evaluation needs.
//	Step C  clustering               — Subset normalizes the masked
//	                                   features and applies Ward
//	                                   hierarchical clustering with a
//	                                   manual K or the elbow rule.
//	Step D  representative selection — extraction screening (10% rule)
//	                                   plus the §3.4 reselection loop
//	                                   via internal/represent.
//	Step E  prediction               — Evaluate builds the matrix model
//	                                   and compares predictions against
//	                                   the measured ground truth,
//	                                   computing error statistics and
//	                                   the benchmarking-reduction
//	                                   breakdown.
package pipeline

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"fgbs/internal/arch"
	"fgbs/internal/cluster"
	"fgbs/internal/extract"
	"fgbs/internal/fault"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/maqao"
	"fgbs/internal/predict"
	"fgbs/internal/represent"
	"fgbs/internal/sim"
)

// MinMeasurableCycles is the profiling floor: codelets below it are
// discarded as unmeasurable, the scaled analogue of the paper's
// "execution time under one million cycles" rule (§3.2).
const MinMeasurableCycles = 25000

// Options configures Profile.
type Options struct {
	// Reference defaults to arch.Reference().
	Reference *arch.Machine
	// Targets defaults to arch.Targets().
	Targets []*arch.Machine
	// Seed drives dataset construction and measurement noise.
	Seed uint64
	// Workers bounds concurrent measurements (0 = GOMAXPROCS).
	Workers int
	// Measurer replaces the raw simulator on the measurement path —
	// typically a measure.Robust stacked over a fault.Injector. nil
	// keeps the direct simulator call, byte-identical to earlier
	// releases. With a non-nil Measurer, measurement failures no longer
	// abort the profile: they escalate into the §3.4 screening
	// machinery (see Profile.RefFailed / Profile.TargetFailed).
	Measurer fault.Measurer
}

// Profile holds every measurement the experiments need: Step B's
// reference profile and features, the standalone (microbenchmark)
// times, and the full-suite ground truth on each target.
//
// A Profile is immutable after NewProfile/ReadProfile returns: Subset,
// Evaluate, NormalizedPoints and the experiment helpers only read it
// (NormalizedPoints copies rows before normalizing), so one Profile
// may be shared by any number of concurrent goroutines — the property
// internal/server relies on to answer queries against a single shared
// profile per suite.
type Profile struct {
	Progs    []*ir.Program
	Codelets []*ir.Codelet
	Ref      *arch.Machine
	Targets  []*arch.Machine

	// Per codelet i:
	RefInApp      []float64 // t_ref: in-app median seconds on reference
	RefStandalone []float64 // extracted microbenchmark on reference
	IllBehaved    []bool    // §3.4 screening outcome on reference
	Discarded     []bool    // below the measurement floor
	Features      [][]float64

	// Per target t, per codelet i:
	TargetInApp      [][]float64 // ground truth
	TargetStandalone [][]float64 // microbenchmark on target

	// Failure markers, set only when profiling ran under a fault-aware
	// Measurer (Options.Measurer) and a measurement failed past its
	// retry budget. Both stay nil on a clean build, keeping serialized
	// profiles byte-identical to fault-unaware ones.
	//
	// RefFailed[i] means codelet i lost a reference measurement: it is
	// also marked IllBehaved so represent.Select never picks it as a
	// representative. TargetFailed[t][i] means codelet i has no
	// trustworthy ground truth on target t; Evaluate excludes it from
	// the error statistics instead of comparing against zeros.
	RefFailed    []bool
	TargetFailed [][]bool
}

// Degraded reports whether the profile carries failure markers — i.e.
// it was built under fault escalation and at least one measurement
// exhausted its retries. Servers use this to mark derived answers as
// degraded rather than presenting them as clean results.
func (p *Profile) Degraded() bool {
	return p.RefFailed != nil || p.TargetFailed != nil
}

func (p *Profile) refFailedAt(i int) bool {
	return p.RefFailed != nil && p.RefFailed[i]
}

func (p *Profile) targetFailedAt(t, i int) bool {
	return p.TargetFailed != nil && p.TargetFailed[t][i]
}

// Detect flattens suite programs into aligned (program, codelet)
// slices, validating each program — Step A against our IR suites.
func Detect(progs []*ir.Program) ([]*ir.Program, []*ir.Codelet, error) {
	var ps []*ir.Program
	var cs []*ir.Codelet
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			return nil, nil, fmt.Errorf("pipeline: %w", err)
		}
		if len(p.Codelets) == 0 {
			return nil, nil, fmt.Errorf("pipeline: program %q has no codelets", p.Name)
		}
		for _, c := range p.Codelets {
			ps = append(ps, p)
			cs = append(cs, c)
		}
	}
	return ps, cs, nil
}

// NewProfile runs Steps A and B over the given suite programs and
// gathers all measurements used downstream. Measurements run in
// parallel; results are deterministic.
func NewProfile(progs []*ir.Program, opts Options) (*Profile, error) {
	return NewProfileContext(context.Background(), progs, opts)
}

// NewProfileContext is NewProfile with cancellation: profiling is the
// expensive step (every codelet is simulated on every machine), and a
// server shutting down mid-build must not leave goroutines simulating
// into the void. Cancellation is checked between per-codelet
// measurement jobs; on cancellation the context's error is returned
// and the partial profile is discarded.
func NewProfileContext(ctx context.Context, progs []*ir.Program, opts Options) (*Profile, error) {
	if opts.Reference == nil {
		opts.Reference = arch.Reference()
	}
	if opts.Targets == nil {
		opts.Targets = arch.Targets()
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	ps, cs, err := Detect(progs)
	if err != nil {
		return nil, err
	}
	n := len(cs)
	pr := &Profile{
		Progs: ps, Codelets: cs,
		Ref: opts.Reference, Targets: opts.Targets,
		RefInApp:      make([]float64, n),
		RefStandalone: make([]float64, n),
		IllBehaved:    make([]bool, n),
		Discarded:     make([]bool, n),
		Features:      make([][]float64, n),
	}
	for range opts.Targets {
		pr.TargetInApp = append(pr.TargetInApp, make([]float64, n))
		pr.TargetStandalone = append(pr.TargetStandalone, make([]float64, n))
	}

	// Shared datasets, one per distinct program.
	datasets := make(map[*ir.Program]*sim.Dataset)
	for _, p := range progs {
		ds, err := sim.BuildDataset(p, opts.Seed)
		if err != nil {
			return nil, err
		}
		datasets[p] = ds
	}

	measure := func(i int, m *arch.Machine, mode sim.Mode) (*sim.Measurement, error) {
		o := sim.Options{
			Machine: m, Mode: mode, Seed: opts.Seed,
			Dataset: datasets[ps[i]], ProbeCycles: -1, NoiseAmp: -1,
		}
		if opts.Measurer != nil {
			return opts.Measurer.Measure(ctx, ps[i], cs[i], o)
		}
		return sim.Measure(ps[i], cs[i], o)
	}

	// With a fault-aware Measurer, a measurement that exhausted its
	// retries degrades the codelet instead of aborting the whole
	// profile. Cancellation still aborts: a dying server is not a
	// flaky target.
	escalate := opts.Measurer != nil
	if escalate {
		pr.RefFailed = make([]bool, n)
		for range opts.Targets {
			pr.TargetFailed = append(pr.TargetFailed, make([]bool, n))
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i := 0; i < n && ctx.Err() == nil; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			refIn, err := measure(i, pr.Ref, sim.ModeInApp)
			if err != nil {
				if escalate && ctx.Err() == nil {
					// The reference in-app time anchors everything
					// derived for this codelet (features, the model's
					// matrix row, screening); without it the codelet
					// is screened out entirely.
					pr.RefFailed[i] = true
					pr.IllBehaved[i] = true
					pr.Discarded[i] = true
					pr.Features[i] = make([]float64, features.NumFeatures)
				} else {
					errs[i] = err
				}
				return
			}
			pr.RefInApp[i] = refIn.Seconds
			pr.Discarded[i] = refIn.Counters.Cycles < MinMeasurableCycles

			st := maqao.Analyze(ps[i], cs[i], pr.Ref)
			pr.Features[i] = features.Assemble(ps[i], cs[i], refIn, st)

			refSa, err := measure(i, pr.Ref, sim.ModeStandalone)
			if err != nil {
				if escalate && ctx.Err() == nil {
					// Standalone extraction failed: mark ill-behaved
					// so represent.Select never picks this codelet,
					// but keep the in-app anchor and features.
					pr.RefFailed[i] = true
					pr.IllBehaved[i] = true
				} else {
					errs[i] = err
					return
				}
			} else {
				pr.RefStandalone[i] = refSa.Seconds
				pr.IllBehaved[i] = extract.IllBehaved(refSa.Seconds, refIn.Seconds)
			}

			for t, m := range pr.Targets {
				tin, err := measure(i, m, sim.ModeInApp)
				if err == nil {
					var tsa *sim.Measurement
					if tsa, err = measure(i, m, sim.ModeStandalone); err == nil {
						pr.TargetInApp[t][i] = tin.Seconds
						pr.TargetStandalone[t][i] = tsa.Seconds
						continue
					}
				}
				if escalate && ctx.Err() == nil {
					pr.TargetFailed[t][i] = true
					continue
				}
				errs[i] = err
				return
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	pr.trimFailureMarkers()
	return pr, nil
}

// trimFailureMarkers drops all-false failure slices so a clean build —
// even one that ran under fault escalation — serializes identically to
// a fault-unaware one.
func (p *Profile) trimFailureMarkers() {
	if !anyTrue(p.RefFailed) {
		p.RefFailed = nil
	}
	any := false
	for _, row := range p.TargetFailed {
		if anyTrue(row) {
			any = true
			break
		}
	}
	if !any {
		p.TargetFailed = nil
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// N returns the codelet count.
func (p *Profile) N() int { return len(p.Codelets) }

// TargetIndex finds a target machine by name.
func (p *Profile) TargetIndex(name string) (int, error) {
	for t, m := range p.Targets {
		if m.Name == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown target %q", name)
}

// NormalizedPoints applies the mask and z-score normalization (§3.3)
// to the profile's feature matrix.
func (p *Profile) NormalizedPoints(mask features.Mask) [][]float64 {
	pts := mask.ApplyMatrix(p.Features)
	// Copy before normalizing: the profile's features stay raw.
	out := make([][]float64, len(pts))
	for i, row := range pts {
		out[i] = append([]float64(nil), row...)
	}
	features.NormalizeMatrix(out)
	return out
}

// Subset is the outcome of Steps C and D for one feature mask and one
// cluster count.
type Subset struct {
	Mask features.Mask
	// RequestedK is the dendrogram cut (0 means the elbow rule chose).
	RequestedK int
	Dendro     *cluster.Dendrogram
	Points     [][]float64
	Selection  *represent.Selection
	Model      *predict.Model
}

// K returns the final cluster count after ill-behaved dissolutions.
func (s *Subset) K() int { return s.Selection.K }

// RepStrategy selects how a cluster's representative is chosen
// (ablation A3; the paper uses the centroid-closest member).
type RepStrategy uint8

const (
	// RepCentroid picks the member closest to the cluster centroid.
	RepCentroid RepStrategy = iota
	// RepFirst picks the lowest-indexed eligible member (an arbitrary
	// but deterministic choice).
	RepFirst
)

// SubsetConfig tunes Steps C and D for the ablation studies. The zero
// value is the paper's configuration.
type SubsetConfig struct {
	Linkage cluster.Linkage
	// NoNormalize skips the z-score normalization of §3.3 (A2).
	NoNormalize bool
	// RepStrategy overrides the representative choice (A3).
	RepStrategy RepStrategy
	// IgnoreScreening treats every codelet as well-behaved (A5).
	IgnoreScreening bool
}

// Subset runs clustering (Ward) and representative selection. Pass
// k <= 0 to let the elbow rule choose the cut.
func (p *Profile) Subset(mask features.Mask, k int) (*Subset, error) {
	return p.SubsetWith(mask, k, SubsetConfig{})
}

// SubsetWith is Subset with explicit Step C/D configuration.
func (p *Profile) SubsetWith(mask features.Mask, k int, cfg SubsetConfig) (*Subset, error) {
	pts := p.points(mask, cfg)
	d, err := cluster.Build(pts, cfg.Linkage)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = d.Elbow(pts, p.maxElbowK(), 0)
	}
	labels := d.Cut(k)
	return p.finishSubset(mask, k, d, pts, labels, cfg)
}

// SubsetFromLabels applies Steps D and E to an externally provided
// partition (the random-clustering baseline of Figure 7).
func (p *Profile) SubsetFromLabels(mask features.Mask, labels []int) (*Subset, error) {
	cfg := SubsetConfig{}
	pts := p.points(mask, cfg)
	return p.finishSubset(mask, 0, nil, pts, labels, cfg)
}

func (p *Profile) points(mask features.Mask, cfg SubsetConfig) [][]float64 {
	if cfg.NoNormalize {
		return mask.ApplyMatrix(p.Features)
	}
	return p.NormalizedPoints(mask)
}

func (p *Profile) finishSubset(mask features.Mask, k int, d *cluster.Dendrogram, pts [][]float64, labels []int, cfg SubsetConfig) (*Subset, error) {
	ill := p.IllBehaved
	if cfg.IgnoreScreening {
		ill = make([]bool, p.N())
	}
	if cfg.RepStrategy == RepFirst {
		return p.firstMemberSubset(mask, k, d, pts, labels, ill)
	}
	sel, err := represent.Select(pts, labels, ill)
	if err != nil {
		return nil, err
	}
	model, err := predict.NewModel(p.RefInApp, sel.Labels, sel.Reps)
	if err != nil {
		return nil, err
	}
	return &Subset{
		Mask: mask, RequestedK: k, Dendro: d, Points: pts,
		Selection: sel, Model: model,
	}, nil
}

// firstMemberSubset implements RepFirst: the lowest-indexed eligible
// member of each cluster, with the same dissolution semantics.
func (p *Profile) firstMemberSubset(mask features.Mask, k int, d *cluster.Dendrogram, pts [][]float64, labels []int, ill []bool) (*Subset, error) {
	sel, err := represent.Select(pts, labels, ill)
	if err != nil {
		return nil, err
	}
	for c := range sel.Reps {
		for i, l := range sel.Labels {
			if l == c && !ill[i] {
				sel.Reps[c] = i
				break
			}
		}
	}
	model, err := predict.NewModel(p.RefInApp, sel.Labels, sel.Reps)
	if err != nil {
		return nil, err
	}
	return &Subset{
		Mask: mask, RequestedK: k, Dendro: d, Points: pts,
		Selection: sel, Model: model,
	}, nil
}

// maxElbowK mirrors the paper's sweep ranges: up to 24 clusters.
func (p *Profile) maxElbowK() int {
	if p.N() < 24 {
		return p.N()
	}
	return 24
}

// Elbow returns the elbow-selected cluster count for a mask.
func (p *Profile) Elbow(mask features.Mask) (int, error) {
	pts := p.NormalizedPoints(mask)
	d, err := cluster.Build(pts, cluster.Ward)
	if err != nil {
		return 0, err
	}
	return d.Elbow(pts, p.maxElbowK(), 0), nil
}

// Eval is the Step E outcome on one target architecture.
type Eval struct {
	Target *arch.Machine
	// Per-codelet seconds. Errors[i] is -1 for excluded codelets (no
	// trustworthy measurement; NaN would not survive JSON marshaling).
	Predicted []float64
	Actual    []float64
	Errors    []float64
	Summary   predict.ErrorSummary
	// Excluded counts codelets left out of Summary because a
	// measurement failed past its retry budget — either the codelet's
	// own ground truth on this target, a reference measurement, or its
	// cluster representative's standalone time (which poisons every
	// prediction in that cluster).
	Excluded int
	// Reduction is the benchmarking-cost breakdown (Table 5).
	Reduction predict.ReductionBreakdown
	// Apps aggregates application-level results (Figure 5), aligned
	// with Profile.Apps().
	Apps []AppEval
	// GeoMeanRealSpeedup / GeoMeanPredictedSpeedup summarize Figure 6.
	GeoMeanRealSpeedup      float64
	GeoMeanPredictedSpeedup float64
}

// AppEval is one application's measured and predicted times. Degraded
// marks an application containing excluded codelets: its sums include
// failed (zero) measurements, its ErrorFrac is -1, and it is left out
// of the speedup geomeans.
type AppEval struct {
	Name      string
	RefSec    float64
	ActualSec float64
	PredSec   float64
	ErrorFrac float64
	Degraded  bool
}

// Evaluate predicts every codelet's time on target t from the
// subset's representatives and compares with ground truth.
func (p *Profile) Evaluate(sub *Subset, t int) (*Eval, error) {
	if t < 0 || t >= len(p.Targets) {
		return nil, fmt.Errorf("pipeline: target index %d out of range", t)
	}
	repTimes := make([]float64, sub.Selection.K)
	for k, r := range sub.Selection.Reps {
		repTimes[k] = p.TargetStandalone[t][r]
	}
	predicted, err := sub.Model.Predict(repTimes)
	if err != nil {
		return nil, err
	}
	actual := p.TargetInApp[t]
	errs := predict.Errors(predicted, actual)

	// Exclude codelets without trustworthy numbers on this target: a
	// failed reference or ground-truth measurement, or a representative
	// whose standalone time failed here — the model extrapolates the
	// whole cluster from that one number, so its loss poisons every
	// member's prediction.
	excluded := make([]bool, p.N())
	for i := range excluded {
		excluded[i] = p.refFailedAt(i) || p.targetFailedAt(t, i)
	}
	for k, r := range sub.Selection.Reps {
		if !p.refFailedAt(r) && !p.targetFailedAt(t, r) {
			continue
		}
		for i, l := range sub.Selection.Labels {
			if l == k {
				excluded[i] = true
			}
		}
	}
	kept := make([]float64, 0, len(errs))
	nExcluded := 0
	for i := range errs {
		if excluded[i] {
			errs[i] = -1
			nExcluded++
			continue
		}
		kept = append(kept, errs[i])
	}

	// An all-excluded target leaves no errors to summarize; a zero
	// summary with Excluded == N() says "no data" without smuggling
	// NaNs into JSON encoders.
	var summary predict.ErrorSummary
	if len(kept) > 0 {
		summary = predict.Summarize(kept)
	}
	ev := &Eval{
		Target:    p.Targets[t],
		Predicted: predicted,
		Actual:    actual,
		Errors:    errs,
		Summary:   summary,
		Excluded:  nExcluded,
	}
	ev.Reduction = p.reduction(sub, t)

	apps := p.Apps()
	var refApp, realApp, predApp []float64
	for _, a := range apps {
		ae := AppEval{
			Name:      a.Name,
			RefSec:    a.AppTimes(p.RefInApp),
			ActualSec: a.AppTimes(actual),
			PredSec:   a.AppTimes(predicted),
		}
		for _, i := range a.Codelets {
			if excluded[i] {
				ae.Degraded = true
				break
			}
		}
		if ae.Degraded {
			// Partial sums would masquerade as real application times;
			// flag instead of reporting a number built on zeros.
			ae.ErrorFrac = -1
			ev.Apps = append(ev.Apps, ae)
			continue
		}
		if ae.ActualSec > 0 {
			ae.ErrorFrac = abs(ae.PredSec-ae.ActualSec) / ae.ActualSec
		}
		ev.Apps = append(ev.Apps, ae)
		refApp = append(refApp, ae.RefSec)
		realApp = append(realApp, ae.ActualSec)
		predApp = append(predApp, ae.PredSec)
	}
	// With every application degraded there is no speedup to report;
	// zeros (plus Excluded) beat NaNs that JSON cannot carry.
	if len(refApp) > 0 {
		ev.GeoMeanRealSpeedup = predict.GeoMeanSpeedup(refApp, realApp)
		ev.GeoMeanPredictedSpeedup = predict.GeoMeanSpeedup(refApp, predApp)
	}
	return ev, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// reduction computes the Table 5 accounting for one subset and target.
func (p *Profile) reduction(sub *Subset, t int) predict.ReductionBreakdown {
	return p.ReductionWithRule(sub, t, extract.MinBenchSeconds, extract.MinInvocations)
}

// ReductionWithRule computes the Table 5 accounting under an explicit
// invocation-reduction rule (ablation A4 varies the 1 ms / 10
// invocation thresholds).
func (p *Profile) ReductionWithRule(sub *Subset, t int, minBenchSeconds float64, minInvocations int) predict.ReductionBreakdown {
	rule := func(sa float64) float64 {
		if sa <= 0 {
			return float64(minInvocations)
		}
		n := math.Ceil(minBenchSeconds / sa)
		if n < float64(minInvocations) {
			n = float64(minInvocations)
		}
		return n
	}
	full := 0.0
	for _, a := range p.Apps() {
		full += a.AppTimes(p.TargetInApp[t])
	}
	reducedAll := 0.0
	for i := range p.Codelets {
		sa := p.TargetStandalone[t][i]
		reducedAll += rule(sa) * sa
	}
	reps := 0.0
	for _, r := range sub.Selection.Reps {
		sa := p.TargetStandalone[t][r]
		reps += rule(sa) * sa
	}
	return predict.Reduction(full, reducedAll, reps)
}

// Apps derives the predict.App descriptors from the profile's
// programs (indices into the flattened codelet arrays).
func (p *Profile) Apps() []*predict.App {
	var apps []*predict.App
	index := map[*ir.Program]*predict.App{}
	for i, prog := range p.Progs {
		a, ok := index[prog]
		if !ok {
			a = &predict.App{Name: prog.Name, UncoveredFraction: prog.UncoveredFraction}
			index[prog] = a
			apps = append(apps, a)
		}
		a.Codelets = append(a.Codelets, i)
		a.Invocations = append(a.Invocations, p.Codelets[i].Invocations)
	}
	return apps
}

// SubProfile restricts the profile to the given codelet indices (used
// by the per-application subsetting experiment of Figure 8). The
// returned profile shares the underlying measurements.
func (p *Profile) SubProfile(indices []int) *Profile {
	sp := &Profile{Ref: p.Ref, Targets: p.Targets}
	for _, i := range indices {
		sp.Progs = append(sp.Progs, p.Progs[i])
		sp.Codelets = append(sp.Codelets, p.Codelets[i])
		sp.RefInApp = append(sp.RefInApp, p.RefInApp[i])
		sp.RefStandalone = append(sp.RefStandalone, p.RefStandalone[i])
		sp.IllBehaved = append(sp.IllBehaved, p.IllBehaved[i])
		sp.Discarded = append(sp.Discarded, p.Discarded[i])
		sp.Features = append(sp.Features, p.Features[i])
		if p.RefFailed != nil {
			sp.RefFailed = append(sp.RefFailed, p.RefFailed[i])
		}
	}
	for t := range p.Targets {
		in := make([]float64, 0, len(indices))
		sa := make([]float64, 0, len(indices))
		for _, i := range indices {
			in = append(in, p.TargetInApp[t][i])
			sa = append(sa, p.TargetStandalone[t][i])
		}
		sp.TargetInApp = append(sp.TargetInApp, in)
		sp.TargetStandalone = append(sp.TargetStandalone, sa)
		if p.TargetFailed != nil {
			fa := make([]bool, 0, len(indices))
			for _, i := range indices {
				fa = append(fa, p.TargetFailed[t][i])
			}
			sp.TargetFailed = append(sp.TargetFailed, fa)
		}
	}
	sp.trimFailureMarkers()
	return sp
}

// AppIndices groups codelet indices by application name.
func (p *Profile) AppIndices() map[string][]int {
	out := map[string][]int{}
	for i, prog := range p.Progs {
		out[prog.Name] = append(out[prog.Name], i)
	}
	return out
}

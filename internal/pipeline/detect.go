package pipeline

import (
	"fmt"

	"fgbs/internal/ir"
)

// Detect flattens suite programs into aligned (program, codelet)
// slices, validating each program — Step A against our IR suites.
func Detect(progs []*ir.Program) ([]*ir.Program, []*ir.Codelet, error) {
	var ps []*ir.Program
	var cs []*ir.Codelet
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			return nil, nil, fmt.Errorf("pipeline: %w", err)
		}
		if len(p.Codelets) == 0 {
			return nil, nil, fmt.Errorf("pipeline: program %q has no codelets", p.Name)
		}
		for _, c := range p.Codelets {
			ps = append(ps, p)
			cs = append(cs, c)
		}
	}
	return ps, cs, nil
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fgbs/internal/suites"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8093" || cfg.cacheN != 256 || cfg.seed != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	if !reflect.DeepEqual(cfg.serve, suites.Names()) {
		t.Errorf("serve = %v, want every registered suite %v", cfg.serve, suites.Names())
	}
	if cfg.preload != nil {
		t.Errorf("preload = %v, want none", cfg.preload)
	}
}

func TestParseFlagsLists(t *testing.T) {
	cfg, err := parseFlags([]string{"-suites", "nr,poly", "-preload", "nr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.serve) != 2 || cfg.serve[0] != "nr" || cfg.serve[1] != "poly" {
		t.Errorf("serve = %v", cfg.serve)
	}
	if len(cfg.preload) != 1 || cfg.preload[0] != "nr" {
		t.Errorf("preload = %v", cfg.preload)
	}
}

func TestParseFlagsRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown suite", []string{"-suites", "spec"}, "valid: nas, nr, poly, joint"},
		{"preload outside served", []string{"-suites", "nr", "-preload", "nas"}, "valid: nr"},
		{"bad cachesize", []string{"-cachesize", "0"}, "must be positive"},
		{"negative jobworkers", []string{"-jobworkers", "-1"}, "-jobworkers"},
		{"negative jobretention", []string{"-jobretention", "-5m"}, "-jobretention"},
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"unknown flag", []string{"-bogus"}, ""},
		{"peer without scheme", []string{"-peers", "example.com:8093"}, "absolute http(s) base URL"},
		{"unknown tier", []string{"-stagetiers", "bogus"}, "unknown tier"},
		{"disk tier without dir", []string{"-stagetiers", "disk"}, "requires a stage directory"},
		{"peer tier without peers", []string{"-stagetiers", "memory,peer"}, "requires at least one peer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseFlags(c.args)
			if err == nil {
				t.Fatalf("parseFlags(%v) succeeded, want error", c.args)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestParseFlagsTiers pins the -peers/-stagetiers plumbing: peer URLs
// parse into the config, explicit tier orders survive, and the dry-run
// validation accepts what server.New will accept.
func TestParseFlagsTiers(t *testing.T) {
	dir := t.TempDir()
	cfg, err := parseFlags([]string{
		"-profiledir", dir,
		"-peers", "http://127.0.0.1:9, https://peer.example:8093",
		"-stagetiers", "memory, disk, peer",
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"http://127.0.0.1:9", "https://peer.example:8093"}; !reflect.DeepEqual(cfg.peers, want) {
		t.Errorf("peers = %v, want %v", cfg.peers, want)
	}
	if want := []string{"memory", "disk", "peer"}; !reflect.DeepEqual(cfg.stageTiers, want) {
		t.Errorf("stageTiers = %v, want %v", cfg.stageTiers, want)
	}

	// -peers alone (no explicit tier list, no directory) is a valid
	// memoryless peer-only configuration via DefaultTierNames.
	cfg, err = parseFlags([]string{"-peers", "http://127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.stageTiers != nil {
		t.Errorf("stageTiers = %v, want default (nil)", cfg.stageTiers)
	}
}

// TestParseFlagsFaultProfile validates -faultprofile up front: a
// daemon that starts and then measures garbage (or dies on its first
// build) because of a typo in the profile is strictly worse than one
// that refuses to start.
func TestParseFlagsFaultProfile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	good := write("good.json", `{"seed": 7, "rules": [{"machine": "Atom", "transientRate": 0.2}]}`)
	cfg, err := parseFlags([]string{"-faultprofile", good})
	if err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if cfg.faults == nil || cfg.faults.Seed != 7 || len(cfg.faults.Rules) != 1 {
		t.Errorf("faults = %+v, want the parsed profile", cfg.faults)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing file", []string{"-faultprofile", filepath.Join(dir, "nope.json")}, "-faultprofile"},
		{"invalid JSON", []string{"-faultprofile", write("junk.json", "{not json")}, "invalid profile"},
		{"unknown field", []string{"-faultprofile", write("field.json", `{"rules": [{"transientRtae": 0.2}]}`)}, "valid fields"},
		{"rate out of range", []string{"-faultprofile", write("rate.json", `{"rules": [{"transientRate": 1.5}]}`)}, "transientRate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseFlags(c.args)
			if err == nil {
				t.Fatalf("parseFlags(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestRunShutsDownOnContextCancel starts the daemon on an ephemeral
// port and cancels its context: run must return promptly and cleanly —
// the SIGINT/SIGTERM path without the signal plumbing.
func TestRunShutsDownOnContextCancel(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down after cancellation")
	}
}

package sim

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

// streamTriad builds a STREAM-like codelet a[i] = b[i] + s*c[i] over
// arrays of n doubles.
func streamTriad(n int64) (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("stream")
	p.SetParam("n", n)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	p.AddArray("c", ir.F64, ir.AV("n"))
	c := &ir.Codelet{
		Name: "triad", Invocations: 100,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Add(p.LoadE("b", ir.V("i")), ir.Mul(ir.CF(3), p.LoadE("c", ir.V("i")))),
			},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		panic(err)
	}
	return p, c
}

// smallCompute builds a compute-heavy codelet on an L1-resident array:
// many passes of divisions over a tiny vector.
func smallCompute(n, passes int64) (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("compute")
	p.SetParam("n", n)
	p.SetParam("p", passes)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	c := &ir.Codelet{
		Name: "divsweep", Invocations: 10,
		Loop: &ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AV("p"), Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("a", ir.V("i")),
					RHS: ir.Div(p.LoadE("b", ir.V("i")), ir.Add(p.LoadE("a", ir.V("i")), ir.CF(1.5))),
				},
			}},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		panic(err)
	}
	return p, c
}

// gatherKernel builds a random-gather codelet: s += v[idx[i]].
func gatherKernel(n, span int64) (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("gather")
	p.SetParam("n", n)
	p.SetParam("span", span)
	p.AddArray("v", ir.F64, ir.AV("span"))
	idx := p.AddArray("idx", ir.I64, ir.AV("n"))
	idx.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("span")}
	p.AddScalar("s", ir.F64)
	c := &ir.Codelet{
		Name: "gather", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("s"),
				RHS: ir.Add(p.LoadE("s"), p.LoadE("v", p.LoadE("idx", ir.V("i")))),
			},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		panic(err)
	}
	return p, c
}

func measure(t *testing.T, p *ir.Program, c *ir.Codelet, m *arch.Machine, mode Mode) *Measurement {
	t.Helper()
	res, err := Measure(p, c, Options{Machine: m, Mode: mode, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatalf("Measure(%s on %s): %v", c.Name, m.Name, err)
	}
	return res
}

func TestDatasetLayout(t *testing.T) {
	p, _ := streamTriad(1000)
	ds, err := BuildDataset(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string][2]int64{}
	for _, name := range []string{"a", "b", "c"} {
		base := ds.Base(name)
		if base%datasetAlign != 0 {
			t.Errorf("array %s base %d not aligned", name, base)
		}
		size := ds.SizeBytes(name)
		if size != 8000 {
			t.Errorf("array %s size = %d, want 8000", name, size)
		}
		for other, span := range seen {
			if base < span[0]+span[1] && span[0] < base+size {
				t.Errorf("arrays %s and %s overlap", name, other)
			}
		}
		seen[name] = [2]int64{base, size}
	}
}

func TestDatasetIntInit(t *testing.T) {
	p, _ := gatherKernel(1000, 500)
	ds, err := BuildDataset(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := ds.Ints("idx")
	if len(data) != 1000 {
		t.Fatalf("idx length = %d", len(data))
	}
	distinct := map[int64]bool{}
	for _, v := range data {
		if v < 0 || v >= 500 {
			t.Fatalf("index %d out of bound", v)
		}
		distinct[v] = true
	}
	if len(distinct) < 100 {
		t.Errorf("uniform init produced only %d distinct values", len(distinct))
	}
}

func TestDatasetModInit(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 100)
	a := p.AddArray("x", ir.I64, ir.AV("n"))
	a.Init = ir.IntInit{Kind: ir.IntInitMod, Bound: ir.AC(7)}
	ds, err := BuildDataset(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Ints("x") {
		if v != int64(i%7) {
			t.Fatalf("x[%d] = %d, want %d", i, v, i%7)
		}
	}
}

func TestMeasureDeterminism(t *testing.T) {
	p, c := streamTriad(20000)
	m1 := measure(t, p, c, arch.Nehalem(), ModeInApp)
	m2 := measure(t, p, c, arch.Nehalem(), ModeInApp)
	if m1.Seconds != m2.Seconds {
		t.Errorf("not deterministic: %g vs %g", m1.Seconds, m2.Seconds)
	}
}

func TestStreamingIsBandwidthBound(t *testing.T) {
	// Working set: 3 arrays x 8B x n. Choose n so WS greatly exceeds
	// every LLC (largest is Nehalem's scaled 768 KB).
	p, c := streamTriad(200000) // 4.8 MB
	for _, m := range arch.All() {
		res := measure(t, p, c, m, ModeInApp)
		ctr := res.Counters
		if ctr.BandwidthCycles < ctr.ComputeCycles {
			t.Errorf("%s: streaming triad compute-bound (bw %.0f < compute %.0f cycles)",
				m.Name, ctr.BandwidthCycles, ctr.ComputeCycles)
		}
		if ctr.MemAccesses == 0 {
			t.Errorf("%s: no memory traffic for streaming codelet", m.Name)
		}
	}
}

func TestStreamingSpeedTracksBandwidth(t *testing.T) {
	// On a bandwidth-bound codelet, machine time should roughly order
	// as 1 / absolute memory bandwidth: Nehalem fastest, Atom/Core2
	// slowest.
	p, c := streamTriad(200000)
	times := map[string]float64{}
	for _, m := range arch.All() {
		times[m.Name] = measure(t, p, c, m, ModeInApp).Seconds
	}
	if !(times["Nehalem"] < times["Core 2"] && times["Nehalem"] < times["Atom"]) {
		t.Errorf("bandwidth ordering violated: %v", times)
	}
	if times["Sandy Bridge"] >= times["Core 2"] {
		t.Errorf("Sandy Bridge slower than Core 2 on streaming: %v", times)
	}
}

func TestComputeBoundFollowsClockAndDivider(t *testing.T) {
	p, c := smallCompute(128, 400) // 1 KB working set, div-heavy
	neh := measure(t, p, c, arch.Nehalem(), ModeInApp)
	if neh.Counters.ComputeCycles < neh.Counters.BandwidthCycles {
		t.Fatalf("div sweep not compute bound (compute %.0f, bw %.0f)",
			neh.Counters.ComputeCycles, neh.Counters.BandwidthCycles)
	}
	atom := measure(t, p, c, arch.Atom(), ModeInApp)
	c2 := measure(t, p, c, arch.Core2(), ModeInApp)
	// Atom's divider makes it several times slower than the reference.
	if atom.Seconds < 3*neh.Seconds {
		t.Errorf("Atom div sweep only %.2fx slower", atom.Seconds/neh.Seconds)
	}
	// Core 2 runs compute-bound code about as fast or faster (clock).
	if c2.Seconds > 1.3*neh.Seconds {
		t.Errorf("Core 2 compute-bound %.2fx slower than reference", c2.Seconds/neh.Seconds)
	}
}

func TestGatherPunishesAtom(t *testing.T) {
	// Random gathers over a memory-resident table expose full miss
	// latency on the in-order Atom but are mostly hidden on Nehalem.
	p, c := gatherKernel(100000, 400000)
	neh := measure(t, p, c, arch.Nehalem(), ModeInApp)
	atom := measure(t, p, c, arch.Atom(), ModeInApp)
	slowdown := atom.Seconds / neh.Seconds
	if slowdown < 3 {
		t.Errorf("Atom gather slowdown = %.2fx, want > 3x", slowdown)
	}
	if atom.Counters.ExposedLatCycles <= neh.Counters.ExposedLatCycles {
		t.Error("in-order Atom does not expose more latency than Nehalem")
	}
}

func TestInAppColdVsStandaloneWarm(t *testing.T) {
	// A single-sweep codelet whose working set fits the LLC: in-app
	// (cold every invocation) must be slower than the standalone
	// replay (dump preloaded, invocations back to back).
	p, c := streamTriad(8000) // 192 KB, fits Nehalem L3 (768 KB)
	inApp := measure(t, p, c, arch.Nehalem(), ModeInApp)
	standalone := measure(t, p, c, arch.Nehalem(), ModeStandalone)
	if standalone.Seconds >= inApp.Seconds {
		t.Errorf("standalone (%.3g s) not faster than cold in-app (%.3g s)",
			standalone.Seconds, inApp.Seconds)
	}
	if standalone.Counters.MemAccesses >= inApp.Counters.MemAccesses {
		t.Error("standalone replay did not reduce memory traffic")
	}
}

func TestHugeWorkingSetIsWellBehaved(t *testing.T) {
	// When the working set dwarfs every cache, cold vs warm makes no
	// difference: extraction preserves behavior (all NR codelets are
	// well-behaved in the paper).
	p, c := streamTriad(200000)
	for _, m := range arch.All() {
		inApp := measure(t, p, c, m, ModeInApp)
		standalone := measure(t, p, c, m, ModeStandalone)
		rel := (standalone.Seconds - inApp.Seconds) / inApp.Seconds
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.10 {
			t.Errorf("%s: streaming codelet ill-behaved: standalone differs %.1f%%", m.Name, rel*100)
		}
	}
}

func TestDatasetVariationMakesIllBehaved(t *testing.T) {
	p, c := streamTriad(100000)
	c.DatasetVariation = 0.35
	c.VaryParam = "n"
	inApp := measure(t, p, c, arch.Nehalem(), ModeInApp)
	standalone := measure(t, p, c, arch.Nehalem(), ModeStandalone)
	// Standalone replays the first (full-size) invocation; the in-app
	// median saw shrunken datasets, so standalone overestimates.
	if standalone.Seconds < 1.10*inApp.Seconds {
		t.Errorf("dataset variation not detected: standalone %.3g vs in-app %.3g",
			standalone.Seconds, inApp.Seconds)
	}
}

func TestContextSensitiveMakesIllBehaved(t *testing.T) {
	p, c := streamTriad(100000)
	c.ContextSensitive = true
	inApp := measure(t, p, c, arch.Nehalem(), ModeInApp)
	standalone := measure(t, p, c, arch.Nehalem(), ModeStandalone)
	if standalone.Seconds <= inApp.Seconds {
		t.Error("context-sensitive codelet extracted without slowdown")
	}
}

func TestProbeOverheadHurtsShortCodelets(t *testing.T) {
	pShort, cShort := streamTriad(2000)
	pLong, cLong := streamTriad(200000)
	short := measure(t, pShort, cShort, arch.Nehalem(), ModeInApp)
	long := measure(t, pLong, cLong, arch.Nehalem(), ModeInApp)
	shortShare := short.Counters.ProbeCycles / short.Counters.Cycles
	longShare := long.Counters.ProbeCycles / long.Counters.Cycles
	if shortShare <= longShare {
		t.Errorf("probe share: short %.3f <= long %.3f", shortShare, longShare)
	}
}

func TestMeasurementCountersConsistent(t *testing.T) {
	p, c := streamTriad(50000)
	res := measure(t, p, c, arch.SandyBridge(), ModeInApp)
	ctr := res.Counters
	if ctr.Ops.FPOps() == 0 {
		t.Error("no FP ops counted")
	}
	if ctr.MemLoads == 0 || ctr.MemStores == 0 {
		t.Error("no memory references counted")
	}
	if len(ctr.LevelHits) != 3 {
		t.Errorf("level counters = %d, want 3 for Sandy Bridge", len(ctr.LevelHits))
	}
	if ctr.Seconds <= 0 || ctr.Cycles <= 0 {
		t.Error("non-positive time")
	}
	if res.WorkingSetBytes != 3*50000*8 {
		t.Errorf("working set = %d", res.WorkingSetBytes)
	}
}

func TestVectorOpsCounted(t *testing.T) {
	p, c := streamTriad(50000)
	res := measure(t, p, c, arch.Nehalem(), ModeInApp)
	if res.Counters.VecFPOps == 0 {
		t.Error("vectorizable triad reported no vector FP ops")
	}
	// Forcing scalar code must zero the vector op counter.
	c.Loop.Body[0].(*ir.Assign).Hint = ir.VecNever
	res2 := measure(t, p, c, arch.Nehalem(), ModeInApp)
	if res2.Counters.VecFPOps != 0 {
		t.Error("VecNever codelet reported vector FP ops")
	}
	if res2.Seconds < res.Seconds {
		t.Error("scalar code faster than vector code")
	}
}

func TestMedianOverInvocations(t *testing.T) {
	p, c := streamTriad(30000)
	res := measure(t, p, c, arch.Nehalem(), ModeInApp)
	if len(res.Invocations) != DefaultInvocations {
		t.Fatalf("invocations = %d", len(res.Invocations))
	}
	lo, hi := res.Invocations[0].Seconds, res.Invocations[0].Seconds
	for _, inv := range res.Invocations {
		if inv.Seconds < lo {
			lo = inv.Seconds
		}
		if inv.Seconds > hi {
			hi = inv.Seconds
		}
	}
	if res.Seconds < lo || res.Seconds > hi {
		t.Errorf("median %g outside [%g, %g]", res.Seconds, lo, hi)
	}
}

func TestTriangularLoopRuns(t *testing.T) {
	p := ir.NewProgram("tri")
	p.SetParam("n", 300)
	p.AddArray("m", ir.F64, ir.AV("n"), ir.AV("n"))
	p.AddScalar("s", ir.F64)
	c := &ir.Codelet{
		Name: "lowerhalf", Invocations: 5,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("i"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("s"), RHS: ir.Add(p.LoadE("s"), p.LoadE("m", ir.V("i"), ir.V("j")))},
			}},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	res := measure(t, p, c, arch.Core2(), ModeInApp)
	// Triangular loop touches n*(n-1)/2 elements.
	wantLoads := float64(300 * 299 / 2)
	if res.Counters.MemLoads != wantLoads {
		t.Errorf("loads = %g, want %g", res.Counters.MemLoads, wantLoads)
	}
}

func TestScatterHistogramRuns(t *testing.T) {
	p := ir.NewProgram("is")
	p.SetParam("n", 50000)
	p.SetParam("b", 1024)
	keys := p.AddArray("key", ir.I64, ir.AV("n"))
	keys.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("b")}
	p.AddArray("hist", ir.I64, ir.AV("b"))
	c := &ir.Codelet{
		Name: "hist", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("hist", p.LoadE("key", ir.V("i"))),
				RHS: ir.Add(p.LoadE("hist", p.LoadE("key", ir.V("i"))), ir.CI(1)),
			},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	res := measure(t, p, c, arch.Atom(), ModeInApp)
	if res.Seconds <= 0 {
		t.Fatal("no time simulated")
	}
	if res.Counters.VecFPOps != 0 {
		t.Error("scatter kernel vectorized")
	}
}

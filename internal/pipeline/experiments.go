package pipeline

import (
	"fmt"
	"math"

	"fgbs/internal/features"
	"fgbs/internal/ga"
	"fgbs/internal/rng"
	"fgbs/internal/stats"
)

// SweepPoint is one K of the accuracy/reduction trade-off (Figure 3).
type SweepPoint struct {
	K           int // requested cut
	FinalK      int // after ill-behaved dissolutions
	MedianError []float64
	Reduction   []float64
}

// SweepK evaluates cluster counts kMin..kMax on every target,
// producing Figure 3's two curves per architecture.
func (p *Profile) SweepK(mask features.Mask, kMin, kMax int) ([]SweepPoint, error) {
	var out []SweepPoint
	for k := kMin; k <= kMax && k <= p.N(); k++ {
		sub, err := p.Subset(mask, k)
		if err != nil {
			return nil, fmt.Errorf("pipeline: sweep k=%d: %w", k, err)
		}
		pt := SweepPoint{K: k, FinalK: sub.K()}
		for t := range p.Targets {
			ev, err := p.Evaluate(sub, t)
			if err != nil {
				return nil, err
			}
			pt.MedianError = append(pt.MedianError, ev.Summary.Median)
			pt.Reduction = append(pt.Reduction, ev.Reduction.Total)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RandomClusteringStats is Figure 7's envelope for one K and one
// target: the best/median/worst median-error over random partitions,
// against the feature-guided clustering's result.
type RandomClusteringStats struct {
	K                   int
	Best, Median, Worst float64
	Guided              float64
}

// RandomClusterings compares the mask-guided Ward clustering against
// `trials` uniformly random partitions into K clusters (Figure 7).
func (p *Profile) RandomClusterings(mask features.Mask, k, trials int, t int, seed uint64) (RandomClusteringStats, error) {
	sub, err := p.Subset(mask, k)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	ev, err := p.Evaluate(sub, t)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	res := RandomClusteringStats{K: k, Guided: ev.Summary.Median}

	r := rng.New(seed)
	var errs []float64
	for trial := 0; trial < trials; trial++ {
		labels := randomPartition(r, p.N(), k)
		rsub, err := p.SubsetFromLabels(mask, labels)
		if err != nil {
			// A random cluster can be entirely ill-behaved with no
			// surviving neighbor cluster only if everything is
			// ill-behaved, which Profile construction precludes; any
			// other error is fatal.
			return RandomClusteringStats{}, err
		}
		rev, err := p.Evaluate(rsub, t)
		if err != nil {
			return RandomClusteringStats{}, err
		}
		errs = append(errs, rev.Summary.Median)
	}
	res.Best = stats.Min(errs)
	res.Median = stats.Median(errs)
	res.Worst = stats.Max(errs)
	return res, nil
}

// randomPartition draws a uniform surjective assignment of n items to
// k labels (every label non-empty).
func randomPartition(r *rng.RNG, n, k int) []int {
	if k > n {
		k = n
	}
	labels := make([]int, n)
	for {
		for i := range labels {
			labels[i] = r.Intn(k)
		}
		seen := make([]bool, k)
		cnt := 0
		for _, l := range labels {
			if !seen[l] {
				seen[l] = true
				cnt++
			}
		}
		if cnt == k {
			return labels
		}
	}
}

// PerAppPoint is one budget point of Figure 8.
type PerAppPoint struct {
	// RepsPerApp is the representative budget given to each
	// application (total budget = RepsPerApp x number of predictable
	// apps for per-app subsetting).
	RepsPerApp int
	// TotalReps actually used.
	TotalReps int
	// MedianError per target.
	MedianError []float64
	// ExcludedApps lists applications that could not be predicted
	// per-app (all representatives ill-behaved — MG in the paper).
	ExcludedApps []string
}

// PerAppSubsetting runs Steps A-E separately on each application with
// repsPerApp representatives each, aggregating per-codelet errors
// (Figure 8's "Per Application" series). Applications whose clusters
// are all ill-behaved are excluded, as the paper excludes MG.
func (p *Profile) PerAppSubsetting(mask features.Mask, repsPerApp int) (PerAppPoint, error) {
	pt := PerAppPoint{RepsPerApp: repsPerApp, MedianError: make([]float64, len(p.Targets))}
	perTargetErrs := make([][]float64, len(p.Targets))

	appIdx := p.AppIndices()
	for _, name := range sortedKeys(appIdx) {
		indices := appIdx[name]
		sp := p.SubProfile(indices)
		k := repsPerApp
		if k > len(indices) {
			k = len(indices)
		}
		sub, err := sp.Subset(mask, k)
		if err != nil {
			// Unpredictable application (every cluster ill-behaved).
			pt.ExcludedApps = append(pt.ExcludedApps, name)
			continue
		}
		pt.TotalReps += sub.K()
		for t := range p.Targets {
			ev, err := sp.Evaluate(sub, t)
			if err != nil {
				return pt, err
			}
			perTargetErrs[t] = append(perTargetErrs[t], ev.Errors...)
		}
	}
	for t := range p.Targets {
		pt.MedianError[t] = stats.Median(perTargetErrs[t])
	}
	return pt, nil
}

// CrossAppPoint evaluates shared (whole-suite) subsetting with a
// total representative budget equal to totalReps (Figure 8's "Across
// Applications" series).
func (p *Profile) CrossAppPoint(mask features.Mask, totalReps int) (PerAppPoint, error) {
	sub, err := p.Subset(mask, totalReps)
	if err != nil {
		return PerAppPoint{}, err
	}
	pt := PerAppPoint{TotalReps: sub.K(), MedianError: make([]float64, len(p.Targets))}
	for t := range p.Targets {
		ev, err := p.Evaluate(sub, t)
		if err != nil {
			return pt, err
		}
		pt.MedianError[t] = ev.Summary.Median
	}
	return pt, nil
}

func sortedKeys(m map[string][]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// FeatureFitness builds the §4.2 GA fitness over this (training)
// profile: max of the two targets' average prediction errors times
// the elbow-selected cluster count. Lower is better. The returned
// function is safe for concurrent use.
func (p *Profile) FeatureFitness(targetNames ...string) (ga.Fitness, error) {
	var targets []int
	for _, name := range targetNames {
		t, err := p.TargetIndex(name)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("pipeline: fitness needs at least one target")
	}
	return func(mask features.Mask) float64 {
		if mask.Count() == 0 {
			return math.Inf(1)
		}
		sub, err := p.Subset(mask, 0) // elbow-selected K
		if err != nil {
			return math.Inf(1)
		}
		worst := 0.0
		for _, t := range targets {
			ev, err := p.Evaluate(sub, t)
			if err != nil {
				return math.Inf(1)
			}
			if ev.Summary.Average > worst {
				worst = ev.Summary.Average
			}
		}
		return worst * float64(sub.K())
	}, nil
}

// Package server is the long-running serving layer over the
// subsetting pipeline: the paper's amortization argument turned into a
// daemon. Profiling a suite on the reference machine is expensive and
// happens at most once per suite (a lazily-built registry with
// singleflight coalescing); answering "which system is best for this
// workload?" is cheap and happens per request, with an LRU cache
// replaying repeated queries byte-for-byte.
//
// Endpoints (all JSON):
//
//	POST /v1/subset    clustering + representative selection
//	POST /v1/evaluate  per-target prediction errors + reduction factor
//	POST /v1/select    rank all targets, return the best system
//	GET  /v1/suites    known suites and their load state
//	GET  /v1/artifacts        index of stage-artifact keys this node can serve
//	GET  /v1/artifacts/{key}  framed artifact bytes — the peer-fetch endpoint (404 on miss)
//	GET  /healthz      liveness, breaker + tier state, job-queue saturation (503 when degraded)
//	GET  /metricz      request/cache/registry/stage/breaker/jobs counters, latency quantiles
//
// Long experiments (the Figure 3 sweep, the Figure 7 random baseline,
// the §4.2 GA) run asynchronously on a bounded worker pool:
//
//	POST   /v1/jobs             submit (kind: sweep | randbaseline | ga)
//	GET    /v1/jobs             list jobs, newest first
//	GET    /v1/jobs/{id}        state + progress
//	GET    /v1/jobs/{id}/result completed result
//	DELETE /v1/jobs/{id}        cancel
package server

import (
	"net/http"
	"path/filepath"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/ir"
	"fgbs/internal/jobs"
	"fgbs/internal/measure"
	"fgbs/internal/suites"
)

// Config tunes a Server. The zero value serves the built-in suites
// with the pipeline's defaults and a small result cache.
type Config struct {
	// Seed drives profiling, as the CLI's -seed flag does. Every
	// profile the server builds uses this seed, and it is part of
	// every result-cache key.
	Seed uint64
	// Workers bounds concurrent measurements per profiling run
	// (0 = GOMAXPROCS).
	Workers int
	// ProfileDir, when set, persists built profiles as
	// <dir>/<suite>-<key>.json and loads them back on restart (via the
	// stage store's disk layer); bare <suite>.json files from earlier
	// releases are still adopted for measurer-free builds.
	ProfileDir string
	// StageCacheSize caps the in-memory stage artifact store shared by
	// all suites (entries; default 512). Every pipeline stage — from
	// whole profiles down to per-K subsets and per-target evaluations —
	// resolves through it, so repeated and overlapping queries reuse
	// upstream work instead of recomputing it.
	StageCacheSize int
	// StageDir overrides where the stage store persists disk-layer
	// artifacts; defaults to ProfileDir.
	StageDir string
	// Peers lists base URLs of peer fgbsd daemons. When set, the stage
	// store gains a peer tier that fetches artifacts from their
	// /v1/artifacts/{key} endpoints before recomputing (fgbsd's -peers
	// flag).
	Peers []string
	// StageTiers orders the stage store's byte tiers explicitly
	// (stage.TierMemory, stage.TierDisk, stage.TierPeer). Empty means
	// stage.DefaultTierNames: disk when a directory is configured, then
	// peer when Peers is set. Invalid tier configurations panic in New;
	// cmd/fgbsd validates the flag before constructing the server.
	StageTiers []string
	// MeasurerKey identifies the Measurer's configuration in stage keys
	// (fgbsd passes fault.Profile.Fingerprint()). See
	// pipeline.StageOptions.MeasurerKey.
	MeasurerKey string
	// ResultCacheSize caps the LRU result cache (entries; default 256).
	ResultCacheSize int
	// SuiteNames lists the suites the server accepts; defaults to
	// suites.Names().
	SuiteNames []string
	// Programs resolves a suite name to its IR programs; defaults to
	// suites.Programs. Tests inject small synthetic suites here.
	Programs func(string) ([]*ir.Program, error)
	// JobWorkers bounds concurrently running experiment jobs
	// (0 = GOMAXPROCS). Each job additionally fans out its own
	// experiment-level parallelism.
	JobWorkers int
	// JobQueueDepth bounds queued jobs; submits fail fast when full
	// (default 64).
	JobQueueDepth int
	// JobRetention is how long terminal jobs stay pollable
	// (default 15m).
	JobRetention time.Duration
	// Measurer, when set, replaces the raw simulator for profile
	// builds — the hook fgbsd uses to mount the fault-injection +
	// robust-measurement stack behind -faultprofile. nil keeps the
	// fault-unaware pipeline byte-identical.
	Measurer fault.Measurer
	// MeasureStats, when set, surfaces the robust measurement layer's
	// retry/outlier counters in /metricz.
	MeasureStats func() measure.Stats
	// FaultStats, when set, surfaces the fault injector's counters in
	// /metricz.
	FaultStats func() fault.Stats
	// BreakerThreshold is how many consecutive build failures open a
	// suite's circuit (default DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before one
	// half-open probe (default DefaultBreakerCooldown).
	BreakerCooldown time.Duration
}

// Server answers system-selection queries over shared, cached
// profiles. Create with New, expose via Handler, release with Close.
type Server struct {
	cfg      Config
	suiteSet []string
	breakers *breakerSet
	registry *registry
	results  *resultCache
	metrics  *httpMetrics
	jobs     *jobs.Manager
	mux      *http.ServeMux
	started  time.Time
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.ResultCacheSize <= 0 {
		cfg.ResultCacheSize = 256
	}
	if cfg.SuiteNames == nil {
		cfg.SuiteNames = suites.Names()
	}
	jobDir := ""
	if cfg.ProfileDir != "" {
		jobDir = filepath.Join(cfg.ProfileDir, "jobs")
	}
	breakers := newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
	s := &Server{
		cfg:      cfg,
		suiteSet: cfg.SuiteNames,
		breakers: breakers,
		registry: newRegistry(cfg, breakers),
		results:  newResultCache(cfg.ResultCacheSize),
		metrics:  newHTTPMetrics(),
		mux:      http.NewServeMux(),
		started:  time.Now(), //fgbs:allow determinism /healthz uptime reports real wall time; no experiment result depends on it
	}
	// The manager is built after the registry exists: NewManager's
	// recovery scan calls Rehydrate synchronously, and the rebuilt work
	// functions close over the registry.
	s.jobs = jobs.NewManager(jobs.Config{
		Workers:    cfg.JobWorkers,
		QueueDepth: cfg.JobQueueDepth,
		Retention:  cfg.JobRetention,
		Dir:        jobDir,
		Rehydrate:  s.rehydrateJob,
	})
	s.route("/v1/subset", s.handleSubset)
	s.route("/v1/evaluate", s.handleEvaluate)
	s.route("/v1/select", s.handleSelect)
	s.route("/v1/suites", s.handleSuites)
	s.route("GET /v1/artifacts", s.handleArtifactIndex)
	s.route("GET /v1/artifacts/{key}", s.handleArtifact)
	s.route("/healthz", s.handleHealthz)
	s.route("/metricz", s.handleMetricz)
	s.route("POST /v1/jobs", s.handleJobSubmit)
	s.route("GET /v1/jobs", s.handleJobList)
	s.route("GET /v1/jobs/{id}", s.handleJobGet)
	s.route("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.route("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return s
}

func (s *Server) route(path string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, s.metrics.Wrap(path, h))
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every experiment job and any in-flight profiling
// builds, then waits for the job workers to drain. In-memory profiles
// and cached results simply become garbage.
func (s *Server) Close() {
	s.jobs.Close()
	s.registry.Close()
}

// validSuite reports whether the server serves the named suite.
func (s *Server) validSuite(name string) bool {
	for _, n := range s.suiteSet {
		if n == name {
			return true
		}
	}
	return false
}

// Warm builds (or loads) the named suites' profiles ahead of traffic,
// returning the first error. The daemon calls this for -preload.
func (s *Server) Warm(suiteNames []string) error {
	for _, name := range suiteNames {
		if _, _, err := s.registry.Profile(s.registry.ctx, name); err != nil {
			return err
		}
	}
	return nil
}

package bench

import (
	"context"
	"testing"
)

// TestRegistryShape pins the registry contract: at least the eight
// specs the trajectory file commits, every name well-formed, docs
// present.
func TestRegistryShape(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has %d specs, want >= 8: %v", len(names), names)
	}
	want := []string{
		"analysis/vet-tree",
		"cache/hierarchy-stream",
		"cluster/ward-distance",
		"features/normalize",
		"pipeline/ksweep-cold",
		"pipeline/ksweep-warm",
		"sim/bottleneck",
		"stage/codec-roundtrip",
		"stage/key-hash",
		"stats/median-mad",
	}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("registry missing spec %s", n)
		}
	}
	for _, s := range All() {
		if s.Doc == "" {
			t.Errorf("spec %s has no doc line", s.Name)
		}
	}
}

// TestEverySpecRunsOnce executes the full registry at one repetition
// each — the cheapest end-to-end proof that every Setup, Op, Verify and
// Cleanup is sound. Self-asserting specs (the warm K sweep) do their
// own checking inside Verify.
func TestEverySpecRunsOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every benchmark workload once")
	}
	r := NewRunner(Config{Reps: 1, Warmup: 0})
	run, err := r.Run(context.Background(), All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(run.Results) != len(All()) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(All()))
	}
	for _, res := range run.Results {
		if res.MedianNS < 0 {
			t.Errorf("%s: negative median %v", res.Name, res.MedianNS)
		}
		if res.Reps != 1 {
			t.Errorf("%s: reps %d, want 1", res.Name, res.Reps)
		}
	}
}

func TestRegisterRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no slash", Spec{Name: "noslash", Setup: func(context.Context) (*Instance, error) { return nil, nil }}},
		{"empty name", Spec{Name: "", Setup: func(context.Context) (*Instance, error) { return nil, nil }}},
		{"nil setup", Spec{Name: "a/b"}},
		{"duplicate", Spec{Name: "cluster/ward-distance", Setup: func(context.Context) (*Instance, error) { return nil, nil }}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", tc.spec.Name)
				}
			}()
			Register(tc.spec)
		})
	}
}

func TestMatch(t *testing.T) {
	all, err := Match("")
	if err != nil {
		t.Fatalf("Match(\"\"): %v", err)
	}
	if len(all) != len(All()) {
		t.Fatalf("empty pattern selected %d specs, want %d", len(all), len(All()))
	}

	ward, err := Match("^cluster/")
	if err != nil {
		t.Fatalf("Match(^cluster/): %v", err)
	}
	if len(ward) != 1 || ward[0].Name != "cluster/ward-distance" {
		t.Fatalf("Match(^cluster/) = %v", specNames(ward))
	}

	if _, err := Match("no-such-spec-anywhere"); err == nil {
		t.Fatal("Match on a no-match pattern did not error")
	}
	if _, err := Match("["); err == nil {
		t.Fatal("Match on an invalid regexp did not error")
	}
}

func specNames(specs []Spec) []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

package sim

import (
	"testing"
	"testing/quick"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
	"fgbs/internal/rng"
)

// randomKernel builds a small random element-wise kernel: a mix of
// adds/muls over 1-3 arrays, optionally with a reduction.
func randomKernel(seed uint64) (*ir.Program, *ir.Codelet) {
	r := rng.New(seed)
	p := ir.NewProgram("q")
	n := int64(20000 + r.Intn(30000))
	p.SetParam("n", n)
	arrays := []string{"a", "b", "c"}[:1+r.Intn(3)]
	for _, name := range arrays {
		p.AddArray(name, ir.F64, ir.AV("n"))
	}
	rhs := p.LoadE(arrays[0], ir.V("i"))
	for k := 0; k < 1+r.Intn(4); k++ {
		operand := p.LoadE(arrays[r.Intn(len(arrays))], ir.V("i"))
		if r.Bool(0.5) {
			rhs = ir.Add(rhs, operand)
		} else {
			rhs = ir.Mul(rhs, operand)
		}
	}
	c := &ir.Codelet{
		Name: "rand", Invocations: 1 + r.Intn(50),
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref(arrays[0], ir.V("i")), RHS: rhs},
		}},
	}
	p.MustAddCodelet(c)
	return p, c
}

// Property: for random kernels on every machine, measurements are
// positive, counters are self-consistent, and repeated measurement is
// identical.
func TestMeasurementInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p, c := randomKernel(seed)
		m := arch.All()[int(seed%4)]
		r1, err := Measure(p, c, Options{Machine: m, Seed: seed, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			return false
		}
		r2, err := Measure(p, c, Options{Machine: m, Seed: seed, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			return false
		}
		ctr := r1.Counters
		if r1.Seconds <= 0 || ctr.Cycles <= 0 || ctr.Instructions <= 0 {
			return false
		}
		if ctr.Ops.FPOps() < 0 || ctr.MemLoads < 0 || ctr.MemStores < 0 {
			return false
		}
		// L1 accesses equal the memory-visible references.
		if len(ctr.LevelHits) > 0 {
			l1 := ctr.LevelHits[0] + ctr.LevelMisses[0]
			if float64(l1) < ctr.MemLoads+ctr.MemStores-0.5 {
				return false
			}
		}
		// Cost components never exceed the total.
		if ctr.ComputeCycles > ctr.Cycles*1.05 {
			return false
		}
		return r1.Seconds == r2.Seconds
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: a slower clock means more seconds for the same cycles —
// measured seconds scale consistently across machines for a pure
// compute kernel.
func TestSecondsConsistentWithCycles(t *testing.T) {
	p, c := randomKernel(42)
	for _, m := range arch.All() {
		res, err := Measure(p, c, Options{Machine: m, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		want := m.CyclesToSeconds(res.Counters.Cycles)
		if diff := res.Counters.Seconds - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: seconds %.12g != cycles/freq %.12g", m.Name, res.Counters.Seconds, want)
		}
	}
}

func TestZeroTripLoop(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 100)
	p.AddArray("a", ir.F64, ir.AV("n"))
	c := &ir.Codelet{
		Name: "empty", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AV("n"), Upper: ir.AC(0), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: ir.CF(0)},
		}},
	}
	p.MustAddCodelet(c)
	res, err := Measure(p, c, Options{Machine: arch.Nehalem(), Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MemLoads != 0 || res.Counters.MemStores != 0 {
		t.Error("zero-trip loop touched memory")
	}
	if res.Seconds <= 0 {
		t.Error("probe overhead missing for empty invocation")
	}
}

func TestMeasureValidatesOptions(t *testing.T) {
	p, c := randomKernel(1)
	if _, err := Measure(p, c, Options{}); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestSingleInvocation(t *testing.T) {
	p, c := randomKernel(2)
	res, err := Measure(p, c, Options{Machine: arch.Core2(), Invocations: 1, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invocations) != 1 {
		t.Fatalf("invocations = %d", len(res.Invocations))
	}
	if res.Seconds != res.Invocations[0].Seconds {
		t.Error("median of one invocation differs from it")
	}
}

func TestProbeDisableable(t *testing.T) {
	p, c := randomKernel(3)
	with, err := Measure(p, c, Options{Machine: arch.Nehalem(), Seed: 1, ProbeCycles: -1, NoiseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Measure(p, c, Options{Machine: arch.Nehalem(), Seed: 1, ProbeCycles: 0, NoiseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	if without.Counters.Cycles >= with.Counters.Cycles {
		t.Error("disabling the probe did not reduce measured cycles")
	}
}

// Property: the noise amplitude bounds the deviation between noisy
// and noiseless measurements.
func TestNoiseBounded(t *testing.T) {
	p, c := randomKernel(4)
	clean, err := Measure(p, c, Options{Machine: arch.Atom(), Seed: 1, ProbeCycles: -1, NoiseAmp: 0})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Measure(p, c, Options{Machine: arch.Atom(), Seed: 1, ProbeCycles: -1, NoiseAmp: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rel := noisy.Seconds/clean.Seconds - 1
	if rel > 0.051 || rel < -0.051 {
		t.Errorf("noise amplitude exceeded: %.4f", rel)
	}
}

func TestWorkingSetIndependentOfMachine(t *testing.T) {
	p, c := randomKernel(5)
	var ws int64 = -1
	for _, m := range arch.All() {
		res, err := Measure(p, c, Options{Machine: m, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		if ws == -1 {
			ws = res.WorkingSetBytes
		} else if ws != res.WorkingSetBytes {
			t.Errorf("%s: working set %d != %d", m.Name, res.WorkingSetBytes, ws)
		}
	}
}

package nas

import (
	"fgbs/internal/ir"
)

// Suite returns the seven NAS-like applications in alphabetical
// order: bt, cg, ft, is, lu, mg, sp. Together they contribute 67
// codelets.
func Suite() []*ir.Program {
	return []*ir.Program{BT(), CG(), FT(), IS(), LU(), MG(), SP()}
}

// Codelets flattens the suite into (program, codelet) pairs, aligned
// by index.
func Codelets() (progs []*ir.Program, codelets []*ir.Codelet) {
	for _, p := range Suite() {
		for _, c := range p.Codelets {
			progs = append(progs, p)
			codelets = append(codelets, c)
		}
	}
	return progs, codelets
}

// BT builds the Block-Tridiagonal solver proxy (12 codelets, 200
// pseudo-time steps). Two of its codelets are compiled differently
// when extracted (ContextSensitive): the block back-substitution and
// the exact-RHS forcing kernel.
func BT() *ir.Program {
	a := newApp("bt", 0.08, 384)
	for _, g := range []string{"u", "rhs", "us", "vs", "ws", "qs", "rho", "square", "lhs", "diag", "forcing"} {
		a.grid(g)
	}
	const steps = 200

	a.add(a.stencilX("bt_rhs_x", "rhs", "u", 0.40, 4, steps), "BT/rhs.f:100-140")
	a.add(a.stencilY("bt_rhs_y", "rhs", "us", 0.40, 4, steps), "BT/rhs.f:180-220")
	a.add(a.planes5("bt_rhs_z", "rhs", [5]string{"u", "us", "vs", "ws", "qs"}, steps), "BT/rhs.f:266-311")
	a.add(a.triSolve("bt_x_solve", "lhs", "rhs", "diag", 0.40, steps), "BT/x_solve.f:40-90")
	a.add(a.triSolve("bt_y_solve", "lhs", "rhs", "diag", 0.44, steps), "BT/y_solve.f:40-90")
	a.add(a.triSolve("bt_z_solve", "lhs", "rhs", "diag", 0.48, steps), "BT/z_solve.f:40-90")
	a.add(a.addGrids("bt_add", "u", "rhs", steps), "BT/add.f:17-27")
	a.add(a.sumSqScalar("bt_error_norm", "u", steps/25), "BT/error.f:20-40")
	a.add(a.pointwise("bt_matmul_sub", "lhs", "u", "diag", "rhs", 0.7, 2*steps), "BT/solve_subs.f:10-60")
	a.add(a.setGrid("bt_initialize", "u", 1.0, 4), "BT/initialize.f:20-60")

	exact := a.expCompute("bt_exact_rhs", "forcing", "u", 4)
	exact.ContextSensitive = true // loses vectorization context when outlined
	a.add(exact, "BT/exact_rhs.f:30-90")

	binv := a.divPointwise("bt_binvcrhs", "rhs", "diag", 2*steps)
	binv.ContextSensitive = true
	a.add(binv, "BT/solve_subs.f:100-160")
	return a.p
}

// sumSqScalar declares its own accumulator then defers to sumSq.
func (a *app) sumSqScalar(name, u string, inv int) *ir.Codelet {
	acc := name + "_acc"
	a.p.AddScalar(acc, ir.F64)
	return a.sumSq(name, u, acc, inv)
}

// divPointwise builds a division-dominated per-cell kernel (block
// inversion proxy).
func (a *app) divPointwise(name, out, diag string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: pointwise division (block inverse)", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Div(p.LoadE(out, vi, vj),
						ir.Add(p.LoadE(diag, vi, vj), ir.CF(2.0))),
				},
			}},
		}},
	}
}

// SP builds the Scalar-Pentadiagonal solver proxy (12 codelets, 400
// steps). sp_tzetar is context-sensitive (ill-behaved when
// extracted).
func SP() *ir.Program {
	a := newApp("sp", 0.08, 352)
	for _, g := range []string{"u", "rhs", "us", "vs", "ws", "qs", "speed", "lhs", "diag"} {
		a.grid(g)
	}
	const steps = 250

	a.add(a.stencilX("sp_rhs_x", "rhs", "u", 0.55, 3, steps), "SP/rhs.f:80-120")
	a.add(a.stencilY("sp_rhs_y", "rhs", "us", 0.55, 3, steps), "SP/rhs.f:170-210")
	a.add(a.planes5("sp_rhs_z", "rhs", [5]string{"u", "us", "vs", "ws", "qs"}, steps), "SP/rhs.f:275-320")
	a.add(a.triSolve("sp_x_solve", "lhs", "rhs", "diag", 0.55, steps), "SP/x_solve.f:30-80")
	a.add(a.triSolve("sp_y_solve", "lhs", "rhs", "diag", 0.58, steps), "SP/y_solve.f:30-80")
	a.add(a.triSolve("sp_z_solve", "lhs", "rhs", "diag", 0.61, steps), "SP/z_solve.f:30-80")
	a.add(a.pointwise("sp_txinvr", "rhs", "speed", "qs", "u", 0.8, steps), "SP/txinvr.f:15-45")
	a.add(a.pointwise("sp_ninvr", "rhs", "speed", "us", "u", 0.85, steps), "SP/ninvr.f:15-40")
	a.add(a.pointwise("sp_pinvr", "rhs", "speed", "vs", "u", 0.9, steps), "SP/pinvr.f:15-40")
	a.add(a.addGrids("sp_add", "u", "rhs", steps), "SP/add.f:15-25")
	a.add(a.sumSqScalar("sp_error_norm", "u", steps/25), "SP/error.f:20-40")

	tz := a.heavyPointwise("sp_tzetar", "rhs", "ws", "qs", "u", steps)
	tz.ContextSensitive = true
	a.add(tz, "SP/tzetar.f:15-50")
	return a.p
}

// LU builds the SSOR solver proxy (11 codelets, 250 iterations).
// lu_erhs pairs with FT's evolve kernel in the paper's compute-bound
// Cluster A; lu_setbv is context-sensitive.
func LU() *ir.Program {
	a := newApp("lu", 0.08, 320)
	for _, g := range []string{"u", "rsd", "frct", "flux", "a", "b", "d", "tv"} {
		a.grid(g)
	}
	const steps = 200

	a.add(a.triSolve("lu_blts", "rsd", "tv", "d", 0.50, steps), "LU/blts.f:30-90")
	a.add(a.triSolve("lu_buts", "rsd", "tv", "d", 0.53, steps), "LU/buts.f:30-90")
	a.add(a.divPointwise("lu_jacld", "a", "d", steps), "LU/jacld.f:20-80")
	a.add(a.divPointwise("lu_jacu", "b", "d", steps), "LU/jacu.f:20-80")
	a.add(a.stencilX("lu_rhs_x", "rsd", "u", 0.50, 2, steps), "LU/rhs.f:60-100")
	a.add(a.stencilY("lu_rhs_y", "rsd", "flux", 0.50, 3, steps), "LU/rhs.f:140-180")
	a.add(a.planes5("lu_rhs_z", "rsd", [5]string{"u", "flux", "frct", "a", "b"}, steps), "LU/rhs.f:220-270")
	a.add(a.sumSqScalar("lu_l2norm", "rsd", steps/25), "LU/l2norm.f:15-35")
	a.add(a.expCompute("lu_erhs", "frct", "u", 4), "LU/erhs.f:49-57")
	a.add(a.addGrids("lu_ssor_update", "u", "rsd", steps), "LU/ssor.f:120-140")

	setbv := a.setGrid("lu_setbv", "u", 1.0, 4)
	setbv.ContextSensitive = true
	a.add(setbv, "LU/setbv.f:15-50")
	return a.p
}

// MG builds the multigrid proxy (8 codelets, 40 level sweeps). Every
// MG codelet runs on a different grid at each invocation — the
// V-cycle walks the level hierarchy — so all of them fall into the
// paper's first ill-behaved category (DatasetVariation): the memory
// dump captured at the first invocation misrepresents the average
// one. This is why per-application subsetting cannot predict MG
// (Figure 8).
func MG() *ir.Program {
	a := newApp("mg", 0.08, 448)
	for _, g := range []string{"u", "v", "r", "z"} {
		a.grid(g)
	}
	const sweeps = 40
	vary := func(c *ir.Codelet) *ir.Codelet {
		c.DatasetVariation = 0.35
		c.VaryParam = "n"
		return c
	}

	a.add(vary(a.stencilX("mg_resid", "r", "v", 0.35, 3, sweeps)), "MG/mg.f:588-610")
	a.add(vary(a.stencilY("mg_psinv", "z", "r", 0.35, 3, sweeps)), "MG/mg.f:542-566")
	a.add(vary(a.restrict2("mg_rprj3", "z", "r", sweeps)), "MG/mg.f:652-688")
	a.add(vary(a.interp2("mg_interp", "u", "z", sweeps)), "MG/mg.f:712-750")
	a.add(vary(a.sumSqScalar("mg_norm2u3", "r", sweeps/4)), "MG/mg.f:788-804")
	a.add(vary(a.setGrid("mg_zero3", "z", 0, sweeps)), "MG/mg.f:824-836")
	a.add(vary(a.copyGrid("mg_copy", "u", "z", sweeps)), "MG/mg.f:850-862")
	a.add(vary(a.axpyGrid("mg_axpy", "u", "r", sweeps)), "MG/mg.f:876-890")
	return a.p
}

// restrict2 builds the stride-2 fine-to-coarse restriction:
// coarse[i][j] = 0.5*fine[i][2j] + 0.25*(fine[i][2j-1] + fine[i][2j+1]).
func (a *app) restrict2(name, coarse, fine string, inv int) *ir.Codelet {
	p := a.p
	if _, ok := p.Params["nh"]; !ok {
		p.SetParam("nh", gridN/2)
	}
	at := func(dj int64) ir.Expr {
		return p.LoadE(fine, vi, ir.Add(ir.Mul(ir.CI(2), vj), ir.CI(dj)))
	}
	return &ir.Codelet{
		Name: name, Pattern: "DP: fine-to-coarse restriction (stride 2)", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("nh").PlusK(-1), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(coarse, vi, vj),
					RHS: ir.Add(
						ir.Mul(ir.CF(0.5), at(0)),
						ir.Mul(ir.CF(0.25), ir.Add(at(-1), at(1)))),
				},
			}},
		}},
	}
}

// interp2 builds the stride-2 coarse-to-fine interpolation.
func (a *app) interp2(name, fine, coarse string, inv int) *ir.Codelet {
	p := a.p
	if _, ok := p.Params["nh"]; !ok {
		p.SetParam("nh", gridN/2)
	}
	return &ir.Codelet{
		Name: name, Pattern: "DP: coarse-to-fine interpolation (stride 2)", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("nh").PlusK(-1), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(fine, vi, ir.Mul(ir.CI(2), vj)),
					RHS: ir.Add(p.LoadE(coarse, vi, vj),
						ir.Mul(ir.CF(0.5), p.LoadE(coarse, vi, ir.Add(vj, ir.CI(1))))),
				},
			}},
		}},
	}
}

// copyGrid builds out = in.
func (a *app) copyGrid(name, out, in string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: grid copy", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref(out, vi, vj), RHS: p.LoadE(in, vi, vj)},
			}},
		}},
	}
}

// axpyGrid builds out += c*in.
func (a *app) axpyGrid(name, out, in string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: grid axpy", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Add(p.LoadE(out, vi, vj), ir.Mul(ir.CF(0.25), p.LoadE(in, vi, vj))),
				},
			}},
		}},
	}
}

// FT builds the 3-D FFT proxy (8 codelets). ft_evolve is the paper's
// Cluster A exemplar (division + exponential); the butterfly passes
// carry the FFT stride signatures; ft_checksum is context-sensitive.
func FT() *ir.Program {
	a := newApp("ft", 0.08, 448)
	for _, g := range []string{"u0", "u1", "twiddle"} {
		a.grid(g)
	}
	const iters = 20

	a.add(a.expCompute("ft_evolve", "u1", "u0", iters), "FT/appft.f:45-47")
	a.add(a.butterfly("ft_cffts1", 2, 3*iters), "FT/fft3d.f:120-160")
	a.add(a.butterfly("ft_cffts2", 4, 3*iters), "FT/fft3d.f:200-240")
	a.add(a.butterflyUnit("ft_cffts3", "u1", "u0", 3*iters), "FT/fft3d.f:280-320")
	a.add(a.setGrid("ft_init_ui", "u0", 0, 2), "FT/appft.f:20-30")
	a.add(a.twiddleBuild("ft_twiddle", "twiddle", 2), "FT/appft.f:60-75")
	a.add(a.indexMap("ft_indexmap", 2), "FT/appft.f:90-110")

	chk := a.gatherSum("ft_checksum", "u1", iters)
	chk.ContextSensitive = true
	a.add(chk, "FT/appft.f:130-150")
	return a.p
}

// butterfly builds a scalar strided FFT butterfly pass over a flat
// complex-interleaved work array.
func (a *app) butterfly(name string, stride int64, inv int) *ir.Codelet {
	p := a.p
	p.SetParam(name+"_n", int64(gridN*gridN)/stride-2)
	p.AddArray(name+"_flat", ir.F64, ir.AC(int64(gridN*gridN)+8))
	fat := func(off int64) ir.Expr {
		return p.LoadE(name+"_flat", ir.Add(ir.Mul(ir.CI(stride), vi), ir.CI(off)))
	}
	return &ir.Codelet{
		Name: name, Pattern: "DP: FFT butterfly pass", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV(name + "_n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS:  p.Ref(name+"_flat", ir.Mul(ir.CI(stride), vi)),
				RHS:  ir.Add(fat(0), ir.Mul(ir.CF(0.7), fat(1))),
				Hint: ir.VecNever,
			},
			&ir.Assign{
				LHS:  p.Ref(name+"_flat", ir.Add(ir.Mul(ir.CI(stride), vi), ir.CI(1))),
				RHS:  ir.Sub(fat(1), ir.Mul(ir.CF(0.7), fat(0))),
				Hint: ir.VecNever,
			},
		}},
	}
}

// butterflyUnit builds the unit-stride (final) butterfly pass,
// partially vectorized.
func (a *app) butterflyUnit(name, out, in string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: FFT butterfly, unit stride", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Add(p.LoadE(in, vi, vj),
						ir.Mul(ir.CF(0.7), p.LoadE(in, vi, ir.Sub(vj, ir.CI(1))))),
				},
			}},
		}},
	}
}

// twiddleBuild fills the twiddle-factor table with exponentials.
func (a *app) twiddleBuild(name, out string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: exponential table build", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Exp(ir.Mul(ir.CF(-1e-8),
						ir.ToF(ir.Add(ir.Mul(vi, ir.CI(gridN)), vj), ir.F64))),
				},
			}},
		}},
	}
}

// indexMap builds the integer index-map kernel.
func (a *app) indexMap(name string, inv int) *ir.Codelet {
	p := a.p
	p.AddArray(name+"_map", ir.I64, ir.AV("n"), ir.AV("n"))
	return &ir.Codelet{
		Name: name, Pattern: "INT: index map computation", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(name+"_map", vi, vj),
					RHS: ir.Mod(
						ir.Add(ir.Mul(vi, vi), ir.Mul(vj, vj)),
						ir.CI(int64(gridN))),
				},
			}},
		}},
	}
}

// gatherSum builds a unit-stride squared-checksum reduction whose\n// vectorization depends on the application context.
func (a *app) gatherSum(name, grid string, inv int) *ir.Codelet {
	p := a.p
	p.AddScalar(name+"_acc", ir.F64)
	return &ir.Codelet{
		Name: name, Pattern: "DP: checksum reduction", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(name + "_acc"),
					RHS: ir.Add(p.LoadE(name+"_acc"),
						ir.Mul(p.LoadE(grid, vi, vj), p.LoadE(grid, vi, vj))),
				},
			}},
		}},
	}
}

package sim

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

// indirectKernel builds a kernel whose index expression exercises the
// given integer operations, forcing the indirect (compiled-closure)
// address path.
func indirectKernel(t *testing.T, index func(p *ir.Program) ir.Expr) (*ir.Program, *ir.Codelet) {
	t.Helper()
	p := ir.NewProgram("t")
	p.SetParam("n", 4096)
	p.AddArray("dst", ir.F64, ir.AV("n"))
	p.AddArray("v", ir.F64, ir.AT("n", 2))
	idx := p.AddArray("idx", ir.I64, ir.AV("n"))
	idx.Init = ir.IntInit{Kind: ir.IntInitMod, Bound: ir.AC(997)}
	c := &ir.Codelet{
		Name: "ind", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("dst", ir.V("i")), RHS: p.LoadE("v", index(p))},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	return p, c
}

// TestIndirectIndexOperators covers the integer-expression compiler's
// operator set: every index form must execute without error and touch
// memory.
func TestIndirectIndexOperators(t *testing.T) {
	load := func(p *ir.Program) ir.Expr { return p.LoadE("idx", ir.V("i")) }
	cases := map[string]func(p *ir.Program) ir.Expr{
		"add":  func(p *ir.Program) ir.Expr { return ir.Add(load(p), ir.CI(1)) },
		"sub":  func(p *ir.Program) ir.Expr { return ir.Sub(load(p), ir.CI(1)) },
		"mul":  func(p *ir.Program) ir.Expr { return ir.Mul(load(p), ir.CI(2)) },
		"mod":  func(p *ir.Program) ir.Expr { return ir.Mod(load(p), ir.CI(37)) },
		"and":  func(p *ir.Program) ir.Expr { return ir.And(load(p), ir.CI(255)) },
		"shr":  func(p *ir.Program) ir.Expr { return ir.Shr(load(p), ir.CI(2)) },
		"min":  func(p *ir.Program) ir.Expr { return ir.MinE(load(p), ir.CI(100)) },
		"max":  func(p *ir.Program) ir.Expr { return ir.MaxE(load(p), ir.CI(5)) },
		"neg":  func(p *ir.Program) ir.Expr { return ir.MaxE(ir.Neg(load(p)), ir.CI(0)) },
		"abs":  func(p *ir.Program) ir.Expr { return ir.Abs(ir.Sub(load(p), ir.CI(500))) },
		"divi": func(p *ir.Program) ir.Expr { return ir.Div(load(p), ir.CI(3)) },
	}
	for name, ix := range cases {
		t.Run(name, func(t *testing.T) {
			p, c := indirectKernel(t, ix)
			res, err := Measure(p, c, Options{Machine: arch.Nehalem(), Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.MemLoads == 0 {
				t.Error("no loads executed")
			}
		})
	}
}

// TestIndirectDivModByZeroSafe: data-dependent divide/mod by zero in
// an index evaluates to zero rather than crashing the simulator.
func TestIndirectDivModByZeroSafe(t *testing.T) {
	for _, op := range []ir.BinOp{ir.OpDiv, ir.OpMod} {
		p := ir.NewProgram("t")
		p.SetParam("n", 256)
		p.AddArray("dst", ir.F64, ir.AV("n"))
		p.AddArray("v", ir.F64, ir.AV("n"))
		p.AddArray("z", ir.I64, ir.AV("n")) // zero-initialized divisor
		var idx ir.Expr = &ir.Bin{Op: op, A: ir.V("i"), B: p.LoadE("z", ir.V("i"))}
		c := &ir.Codelet{
			Name: "divzero", Invocations: 1,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("dst", ir.V("i")), RHS: p.LoadE("v", idx)},
			}},
		}
		if err := p.AddCodelet(c); err != nil {
			t.Fatal(err)
		}
		if _, err := Measure(p, c, Options{Machine: arch.Atom(), Seed: 1, ProbeCycles: -1, NoiseAmp: -1}); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
}

// TestIndirectOutOfRangeReadsZero: an index pointing outside the data
// array reads as zero (documented defensive behavior).
func TestIndirectOutOfRangeReadsZero(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 256)
	p.AddArray("dst", ir.F64, ir.AV("n"))
	p.AddArray("v", ir.F64, ir.AT("n", 4))
	p.AddArray("big", ir.I64, ir.AV("n")) // zero contents
	idx := ir.Add(ir.Mul(p.LoadE("big", ir.V("i")), ir.CI(1000000)), ir.V("i"))
	c := &ir.Codelet{
		Name: "oob", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("dst", ir.V("i")), RHS: p.LoadE("v", p.LoadE("big", idx))},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(p, c, Options{Machine: arch.Core2(), Seed: 1, ProbeCycles: -1, NoiseAmp: -1}); err != nil {
		t.Fatal(err)
	}
}

// TestUnsupportedIndexRejected: float operations inside an index are
// a structured error, not a panic.
func TestUnsupportedIndexRejected(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 64)
	p.AddArray("dst", ir.F64, ir.AV("n"))
	p.AddArray("v", ir.F64, ir.AV("n"))
	p.AddArray("f", ir.F64, ir.AV("n"))
	idx := ir.ToI(ir.Sqrt(p.LoadE("f", ir.V("i"))))
	c := &ir.Codelet{
		Name: "floatidx", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("dst", ir.V("i")), RHS: p.LoadE("v", idx)},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(p, c, Options{Machine: arch.Nehalem(), Seed: 1, ProbeCycles: -1, NoiseAmp: -1}); err == nil {
		t.Error("float-typed index computation accepted by the simulator")
	}
}

func TestModeString(t *testing.T) {
	if ModeInApp.String() != "in-app" || ModeStandalone.String() != "standalone" {
		t.Error("mode names wrong")
	}
}
